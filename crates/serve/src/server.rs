//! The query server: a micro-batching admission queue in front of the
//! batched inference engine, serving an **atomically hot-swappable** model
//! snapshot.
//!
//! Concurrent callers submit single backbone-feature rows (or small batches)
//! through [`QueryServer::query`] / [`QueryServer::query_batch`]. A
//! dedicated dispatcher thread coalesces whatever is queued — up to
//! [`ServerConfig::max_batch`] requests, waiting at most
//! [`ServerConfig::max_wait_us`] after the first arrival — embeds the batch
//! through the model's image encoder, sign-binarizes the embeddings, and
//! scores them against a sharded packed class memory
//! ([`engine::ShardedClassMemory`]). Each caller receives its own top-k
//! labels.
//!
//! # Snapshots and hot swap
//!
//! All serving state lives in an immutable [`ModelSnapshot`] behind an
//! `Arc`: a [`FrozenModel`] (shared weights, `&self` inference — parameters
//! never mutate while serving) plus the sharded class memory. The
//! dispatcher picks up the current snapshot once per coalesced batch, so
//! every batch is scored against exactly one snapshot and a swap never
//! tears a batch.
//!
//! **Zero model copies on the query path.** Since the model's entire
//! inference surface takes `&self`, neither the dispatcher, nor
//! [`ModelSnapshot::solo_topk`], nor the class-registration control plane
//! ever deep-copies a `ZscModel`; everything embeds through the one shared
//! [`FrozenModel`] allocation. (Earlier revisions cloned the full model per
//! dispatcher hand-off, per `solo_topk` call, and once more into the control
//! plane — the `zero_copy` stress test pins, via `FrozenModel::ptr_eq` /
//! `strong_count` probes, that those copies are gone for good.)
//!
//! Mutations — [`QueryServer::register_class`],
//! [`QueryServer::update_class`], [`QueryServer::remove_class`],
//! [`QueryServer::swap_model`], [`QueryServer::set_threshold`] /
//! [`QueryServer::clear_threshold`] — validate their inputs first, then build the
//! next snapshot on the caller's thread and publish it with one `Arc`
//! store. The sharded memory's copy-on-write shards make the incremental
//! paths cheap: registering a class clones `Arc` handles for every shard
//! except the one the class routes to, which alone is repacked — and a
//! request that fails validation (wrong width, unknown label) returns its
//! typed error before any shard is cloned or repacked. In-flight queries
//! keep scoring against the old snapshot until the dispatcher's next
//! pickup; nothing drains, nothing blocks on the queue.
//!
//! # Exactness
//!
//! Results are **bit-identical** to scoring the same query alone against the
//! snapshot that served it: per-query scores are independent rows of the
//! engine's batched popcount sweep and the sharded top-k merge is
//! bit-identical to the monolithic scorer (the engine's exactness
//! contract), so micro-batching and sharding trade latency for throughput
//! without changing a single output bit. [`QueryServer::query_traced`]
//! returns the serving snapshot's version alongside the labels so callers
//! (and the hot-swap stress test) can verify exactly that.

use crate::wal::{self, SyncPolicy, WalError, WalOp, WriteAheadLog};
use dataset::AttributeSchema;
use engine::{PackedQueryBatch, RoutedClassMemory, RoutedConfig, ShardedClassMemory};
use hdc::{BipolarHypervector, ClassAccumulator};
use hdc_zsc::{Checkpoint, CheckpointDelta, FrozenModel, StreamCheckpoint};
use metrics::{DriftReport, StreamDriftConfig, StreamDriftDetector};
use std::collections::{BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tensor::Matrix;

/// Admission-queue and scoring configuration of a [`QueryServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Largest batch the dispatcher hands to the engine at once.
    pub max_batch: usize,
    /// How long (µs) the dispatcher waits after the first queued request for
    /// more requests to coalesce before dispatching a partial batch.
    pub max_wait_us: u64,
    /// Thread count of the engine pool the batch is scored across.
    pub threads: usize,
    /// How many labels each query gets back, most similar first. When this
    /// exceeds the number of currently-registered classes, each query gets
    /// every class — `min(top_k, classes)` labels (the engine's truncation
    /// contract), never an error.
    pub top_k: usize,
    /// Number of shards the class memory is split across. Lookup results are
    /// bit-identical for every shard count; more shards make serve-time
    /// class registration cheaper (only the touched shard is repacked) at a
    /// small merge cost per query.
    pub shards: usize,
    /// `Some` runs the server in **routed** mode: alongside the sharded
    /// memory, every snapshot carries a coarse-to-fine
    /// [`engine::RoutedClassMemory`] under this configuration and queries
    /// are scored through it. With the config's default full probing
    /// results stay bit-identical to the exhaustive path; a partial
    /// `nprobe` shortlists a few clusters per query — the sub-linear mode
    /// for very large class sets. `None` (the default) serves exhaustively.
    pub routed: Option<RoutedConfig>,
    /// How many streamed observations ([`QueryServer::observe`]) are folded
    /// into the per-class counters before the touched prototypes are
    /// re-signed and published as one snapshot. `1` (the default) publishes
    /// after every observe; larger values batch the snapshot churn while the
    /// counters — and the write-ahead log — still advance per observe, so
    /// nothing acknowledged is ever lost. [`QueryServer::flush`] publishes a
    /// partial batch on demand. Must be at least 1.
    pub publish_every: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait_us: 200,
            threads: engine::Pool::auto().threads(),
            top_k: 5,
            shards: 4,
            routed: None,
            publish_every: 1,
        }
    }
}

/// One scored label: `(class label, similarity in [-1, 1])`.
pub type ScoredLabel = (String, f32);

/// The open-set verdict a calibrated snapshot attaches to a served query.
///
/// Only produced when the serving snapshot carries a rejection threshold
/// ([`QueryServer::set_threshold`], or a checkpoint whose
/// [`SimilarityCalibration`](hdc_zsc::SimilarityCalibration) seeded one):
/// the verdict is [`Verdict::Unknown`] exactly when the query's best
/// similarity falls **strictly below** the threshold — the same strict-less
/// rule [`hdc_zsc::SimilarityCalibrator`] fits its target false-reject rate
/// against, so ties with the threshold stay `Known`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The best similarity cleared the threshold; the top-1 label is an
    /// in-distribution answer.
    Known,
    /// The best similarity fell strictly below the threshold; the query
    /// likely belongs to no registered class.
    Unknown,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Known => write!(f, "known"),
            Verdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// Why a query could not be served.
///
/// Marked `#[non_exhaustive]`: the serving surface may grow new failure
/// modes, so downstream matches must keep a wildcard arm.
#[derive(Debug)]
#[must_use = "a serve error says why the request was rejected and should be handled"]
#[non_exhaustive]
pub enum ServeError {
    /// The server was (or is being) shut down before the query completed.
    Stopped,
    /// A submitted feature row has the wrong width.
    FeatureWidth {
        /// Width the model's backbone expects.
        expected: usize,
        /// Width the caller submitted.
        found: usize,
    },
    /// A submitted class-attribute row has the wrong width.
    AttributeWidth {
        /// Width the model's attribute encoder expects.
        expected: usize,
        /// Width the caller submitted.
        found: usize,
    },
    /// A class label was not found (e.g. removing an unregistered class).
    UnknownClass(String),
    /// A class label is already registered. Registration never silently
    /// overwrites; use [`QueryServer::update_class`] to re-point an existing
    /// class (this also keeps WAL replay idempotence well-defined — every
    /// logged register is a genuine insert).
    DuplicateLabel(String),
    /// The server is draining: [`QueryServer::stop`] was called, queries
    /// already admitted are being scored, and no new ones are accepted.
    Draining,
    /// The network front-end's bounded admission queue was full, so the
    /// request was load-shed instead of being queued behind the dispatcher.
    /// Rejection is immediate and cheap — the caller should back off and
    /// retry; admitted requests are unaffected (see [`crate::net`]).
    Overloaded {
        /// Capacity of the admission queue that was full.
        capacity: usize,
    },
    /// A network connection used up its per-connection request quota and is
    /// being closed (see [`crate::net::NetConfig::connection_quota`]).
    QuotaExhausted {
        /// The quota the connection was admitted under.
        limit: u64,
    },
    /// The server could not be constructed from the given parts, or a
    /// mutation would leave it unservable (e.g. removing the last class).
    InvalidConfig(String),
    /// A checkpoint could not be loaded or validated.
    Checkpoint(hdc_zsc::CheckpointError),
    /// The write-ahead log could not be written, read, or replayed.
    Wal(WalError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Stopped => write!(f, "query server is stopped"),
            ServeError::FeatureWidth { expected, found } => write!(
                f,
                "feature row has width {found}, the model expects {expected}"
            ),
            ServeError::AttributeWidth { expected, found } => write!(
                f,
                "class-attribute row has width {found}, the model expects {expected}"
            ),
            ServeError::UnknownClass(label) => write!(f, "no class registered as `{label}`"),
            ServeError::DuplicateLabel(label) => write!(
                f,
                "class `{label}` is already registered (use update_class to overwrite)"
            ),
            ServeError::Draining => write!(f, "query server is draining and rejects new queries"),
            ServeError::Overloaded { capacity } => write!(
                f,
                "admission queue full ({capacity} in flight); request load-shed, back off and retry"
            ),
            ServeError::QuotaExhausted { limit } => {
                write!(f, "connection exhausted its request quota of {limit}")
            }
            ServeError::InvalidConfig(msg) => write!(f, "invalid server configuration: {msg}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            ServeError::Wal(e) => write!(f, "write-ahead log failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            ServeError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdc_zsc::CheckpointError> for ServeError {
    fn from(e: hdc_zsc::CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Wal(e)
    }
}

/// How a durable server persists its mutation plane; see
/// [`QueryServer::start_durable`] and the [`crate::wal`] module docs.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the write-ahead log (`wal.log`) and the
    /// checkpoint-delta compaction base (`base.json`). Created if missing.
    pub dir: PathBuf,
    /// When appended records are fsynced; [`SyncPolicy::Always`] by
    /// default.
    pub sync: SyncPolicy,
    /// Fold the WAL into a fresh compaction base after this many records
    /// (`0` disables automatic compaction; [`QueryServer::compact`] is
    /// always available). Defaults to 64.
    pub compact_every: u64,
}

impl DurabilityConfig {
    /// Per-record fsync, compaction every 64 records, logs under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            sync: SyncPolicy::Always,
            compact_every: 64,
        }
    }
}

/// What [`QueryServer::recover`] rebuilt from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a recovery report says how much state was rebuilt and should be checked"]
pub struct RecoveryReport {
    /// The snapshot version the recovered server resumes at — the
    /// compaction base's version plus one per replayed *publication*
    /// (classic mutation records each published one snapshot; streamed
    /// observe records publish on the `publish_every` cadence, with flush
    /// records marking the explicit boundaries), i.e. exactly the version
    /// the pre-crash server last acknowledged.
    pub snapshot_version: u64,
    /// WAL records replayed on top of the compaction base.
    pub replayed_records: u64,
    /// Whether a torn final record was detected (and cleanly ignored): the
    /// signature of a crash mid-append.
    pub torn_tail: bool,
}

/// The durable half of the control plane: the open WAL plus everything
/// compaction needs. Lives inside the control mutex, so WAL appends are
/// ordered exactly like the mutations they log.
#[derive(Debug)]
struct DurableState {
    wal: WriteAheadLog,
    dir: PathBuf,
    /// The serving schema, pinned at startup; compaction captures model
    /// checkpoints against it, and swapped-in models must keep matching it.
    schema: AttributeSchema,
    compact_every: u64,
    since_compact: u64,
}

/// The continual-learning half of the control plane: exact per-class
/// bundling counters, the publication batching position, and the drift
/// detector fed one displacement per published class version. Lives inside
/// the control mutex like every other mutation-plane state, so observes are
/// ordered exactly like the WAL records that log them.
#[derive(Debug)]
struct StreamControl {
    /// Copy of [`ServerConfig::publish_every`] — the automatic publication
    /// cadence.
    publish_every: u32,
    /// Exact i32 counters per streamed class; prototypes are re-signed from
    /// these at every publication boundary, so folding is order-independent
    /// and bit-reproducible from the counters alone.
    accumulators: ClassAccumulator,
    /// Classes observed since their last publication — what the next
    /// boundary re-signs. Sorted, so publication order is deterministic.
    pending: BTreeSet<String>,
    /// Observes folded since the last publication boundary.
    since_publish: u64,
    /// Lifetime observes accepted (pre- and post-publication).
    observes: u64,
    /// EWMA + Page–Hinkley change-point detection over per-class prototype
    /// displacement between published versions.
    drift: StreamDriftDetector,
}

impl StreamControl {
    fn fresh(dim: usize, publish_every: u32) -> Self {
        Self {
            publish_every,
            accumulators: ClassAccumulator::new(dim),
            pending: BTreeSet::new(),
            since_publish: 0,
            observes: 0,
            drift: StreamDriftDetector::new(StreamDriftConfig::default()),
        }
    }

    /// The delta-persistable projection of this state (`None` when nothing
    /// has been streamed, keeping pre-streaming bases byte-stable).
    fn checkpoint(&self) -> Option<StreamCheckpoint> {
        if self.accumulators.is_empty() && self.since_publish == 0 {
            return None;
        }
        Some(StreamCheckpoint {
            accumulators: self.accumulators.clone(),
            pending: self.pending.iter().cloned().collect(),
            since_publish: self.since_publish,
        })
    }
}

/// Streaming continual-learning counters of a [`QueryServer`]; see
/// [`QueryServer::stream_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct StreamStats {
    /// Observations accepted over the server's lifetime (on a recovered
    /// server: since the compaction base, i.e. replayed plus live).
    pub observes: u64,
    /// Classes with counter changes not yet re-signed into a published
    /// snapshot.
    pub pending_classes: u64,
    /// Observations folded since the last publication boundary.
    pub since_publish: u64,
    /// Class-version publications the drift detector has scored.
    pub publishes: u64,
    /// Page–Hinkley drift alarms raised so far.
    pub drift_alarms: u64,
}

/// Durability counters of a durable [`QueryServer`]; see
/// [`QueryServer::durability_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct DurabilityStats {
    /// Size of the live write-ahead log file in bytes (header included).
    pub wal_bytes: u64,
    /// WAL records appended since the last compaction folded the log into
    /// a fresh base.
    pub records_since_compaction: u64,
    /// The sequence number the next appended record will carry.
    pub next_record_seq: u64,
}

/// Counters describing the batching and hot-swap behaviour observed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct ServerStats {
    /// Queries answered.
    pub queries: u64,
    /// Engine dispatches (each serving one coalesced batch).
    pub batches: u64,
    /// Largest coalesced batch observed.
    pub max_batch_observed: usize,
    /// Snapshot swaps published (class registrations/updates/removals and
    /// full model swaps).
    pub swaps: u64,
}

impl ServerStats {
    /// Mean coalesced batch size (0 when nothing was dispatched).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }
}

/// One immutable serving state: the frozen model plus the sharded class
/// memory derived from it, tagged with a monotonically increasing version.
///
/// Snapshots are cheap to derive from one another — the model is shared
/// through the [`FrozenModel`]'s `Arc` and the memory's shards are
/// copy-on-write — and are never mutated after publication, so a reader
/// holding an `Arc<ModelSnapshot>` can score against it indefinitely, swap
/// or no swap.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    version: u64,
    model: FrozenModel,
    memory: ShardedClassMemory,
    /// The coarse-to-fine index of a routed-mode server; evolves
    /// incrementally with class mutations (only the touched cluster
    /// repacks) and is rebuilt from scratch — deterministically — on model
    /// swaps.
    routed: Option<RoutedClassMemory>,
    /// The calibrated open-set rejection threshold, when one is set; see
    /// [`Verdict`]. Carried by the snapshot so a threshold change is one
    /// more atomic hot swap: every query is judged by exactly the snapshot
    /// that scored it.
    threshold: Option<f32>,
}

impl ModelSnapshot {
    /// The snapshot's version: 0 for the server's initial state, +1 per
    /// published swap.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The sharded class memory queries are scored against (directly, or —
    /// in routed mode — as the ground truth the routed index shortlists
    /// over).
    pub fn memory(&self) -> &ShardedClassMemory {
        &self.memory
    }

    /// The routed coarse-to-fine index, for snapshots published by a server
    /// running in routed mode ([`ServerConfig::routed`]).
    pub fn routed(&self) -> Option<&RoutedClassMemory> {
        self.routed.as_ref()
    }

    /// The frozen model embedding the queries. Cloning the returned handle
    /// clones an `Arc`, never the weights.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// The open-set rejection threshold this snapshot judges queries by,
    /// when one is set ([`QueryServer::set_threshold`]).
    pub fn threshold(&self) -> Option<f32> {
        self.threshold
    }

    /// The verdict this snapshot assigns to a served top-k: `None` when no
    /// threshold is set, otherwise [`Verdict::Unknown`] iff the best
    /// similarity is **strictly below** the threshold (an empty top-k —
    /// `k = 0` — is `Unknown` under a threshold, since nothing cleared it).
    ///
    /// Deterministic in the similarity *bits*, so recomputing over
    /// [`ModelSnapshot::solo_topk`] reproduces the served verdict exactly.
    pub fn verdict(&self, top: &[ScoredLabel]) -> Option<Verdict> {
        self.threshold.map(|threshold| match top.first() {
            Some(&(_, sim)) if sim >= threshold => Verdict::Known,
            _ => Verdict::Unknown,
        })
    }

    /// Scores one feature row against this snapshot exactly as the server
    /// does, but solo — no admission queue, no batching. The serving
    /// contract is that a query answered under version `v` is bit-identical
    /// to `solo_topk` on the version-`v` snapshot.
    ///
    /// Embeds through the shared [`FrozenModel`] (`&self` inference), so
    /// this copies nothing and is itself as cheap as one dispatcher row.
    pub fn solo_topk(&self, features: &[f32], k: usize) -> Vec<ScoredLabel> {
        let embedding = self
            .model
            .embed_images(&Matrix::from_rows(&[features.to_vec()]));
        let packed = engine::pack_float_signs(embedding.row(0));
        let top = match &self.routed {
            Some(routed) => routed.top_k(&packed, k),
            None => self.memory.top_k(&packed, k),
        };
        top.into_iter()
            .map(|(label, sim)| (label.to_string(), sim))
            .collect()
    }
}

/// One served query result: the snapshot version that scored it, the top-k
/// labels, and the snapshot's open-set verdict (`None` when no threshold
/// was set).
pub type ServedResult = (u64, Vec<ScoredLabel>, Option<Verdict>);

/// One queued query: the feature row plus the channel its result goes back
/// on.
#[derive(Debug)]
struct Request {
    features: Vec<f32>,
    responder: mpsc::Sender<ServedResult>,
}

/// State shared between callers and the dispatcher thread.
#[derive(Debug)]
struct Shared {
    queue: Mutex<QueueState>,
    arrivals: Condvar,
    stats: Mutex<ServerStats>,
    /// The current serving snapshot; the dispatcher clones the `Arc` once
    /// per coalesced batch, mutators store a new one.
    snapshot: Mutex<Arc<ModelSnapshot>>,
    feature_dim: usize,
}

#[derive(Debug)]
struct QueueState {
    pending: VecDeque<Request>,
    shutdown: bool,
}

/// The control plane guarded by one mutex, serializing mutations so
/// concurrent callers publish strictly ordered versions. It holds no model:
/// class encoding runs through the *serving snapshot's* shared
/// [`FrozenModel`] (`&self` inference), so registering a class costs one
/// attribute-encoder forward and zero weight copies.
#[derive(Debug)]
struct ControlPlane {
    attribute_dim: usize,
    /// `Some` for servers started with [`QueryServer::start_durable`] or
    /// [`QueryServer::recover`]: every mutation is WAL-appended (and
    /// fsynced per the policy) *before* its snapshot is published.
    durable: Option<DurableState>,
    /// Streaming continual-learning state; see [`StreamControl`].
    stream: StreamControl,
}

/// A running query server; see the module docs.
///
/// Dropping the server (or calling [`QueryServer::stop`]) drains every
/// already-queued request — each gets its response — then stops the
/// dispatcher thread; submissions arriving after the stop are rejected with
/// [`ServeError::Draining`].
///
/// Started through [`QueryServer::start_durable`] (or rebuilt by
/// [`QueryServer::recover`]), the server additionally write-ahead-logs
/// every class mutation before publishing it, making the mutation plane
/// crash-safe; see the [`crate::wal`] module docs for the full contract.
///
/// # Example
///
/// ```
/// use dataset::AttributeSchema;
/// use hdc_zsc::{ModelConfig, ZscModel};
/// use serve::{QueryServer, ServerConfig};
/// use tensor::Matrix;
///
/// let schema = AttributeSchema::cub200();
/// let model = ZscModel::new(&ModelConfig::tiny(), &schema, 16);
/// let class_attributes = Matrix::ones(3, 312);
/// let labels = vec!["a".into(), "b".into(), "c".into()];
/// let server =
///     QueryServer::start(model, labels, &class_attributes, ServerConfig::default()).unwrap();
/// let top = server.query(&[0.25; 16]).unwrap();
/// assert!(!top.is_empty());
/// // A class registered mid-flight becomes servable without a restart.
/// server.register_class("d", &vec![1.0; 312]).unwrap();
/// assert!(server.snapshot().memory().contains("d"));
/// ```
#[derive(Debug)]
pub struct QueryServer {
    shared: Arc<Shared>,
    control: Mutex<ControlPlane>,
    /// Taken (and joined) by whichever of [`QueryServer::stop`] / `Drop`
    /// runs first; behind its own mutex so `stop` works through `&self`.
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl QueryServer {
    /// Starts a server around a trained model and the class set it serves:
    /// one label per row of `class_attributes`.
    ///
    /// Accepts anything convertible into a [`FrozenModel`]: a `ZscModel` by
    /// value (frozen here — the server takes ownership, no copy), an
    /// already-frozen handle, or a shared `Arc<ZscModel>`. The
    /// class-attribute matrix is encoded once into sign-binarized class
    /// signatures split across [`ServerConfig::shards`] shards; queries then
    /// run entirely through the popcount path against that one shared
    /// model allocation.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the labels, matrix and
    /// configuration do not line up.
    pub fn start(
        model: impl Into<FrozenModel>,
        labels: Vec<String>,
        class_attributes: &Matrix,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        Self::start_with_threshold(model.into(), labels, class_attributes, config, None)
    }

    /// The shared non-durable construction body: [`QueryServer::start`]
    /// seeds no threshold, [`QueryServer::from_checkpoint`] seeds the
    /// checkpoint's calibrated one.
    fn start_with_threshold(
        model: FrozenModel,
        labels: Vec<String>,
        class_attributes: &Matrix,
        config: ServerConfig,
        threshold: Option<f32>,
    ) -> Result<Self, ServeError> {
        validate_class_set(&labels, class_attributes)?;
        validate_config(&config)?;
        let attribute_dim = class_attributes.cols();
        let memory = model
            .sharded_class_memory(labels, class_attributes, config.shards)
            .with_threads(config.threads);
        let routed = config
            .routed
            .map(|rc| routed_from_sharded(&memory, rc, config.threads));
        let stream = StreamControl::fresh(memory.dim(), config.publish_every);
        Ok(Self::start_with_parts(
            model,
            memory,
            routed,
            threshold,
            attribute_dim,
            config,
            0,
            None,
            stream,
        ))
    }

    /// The one spawn point every constructor funnels through: wraps the
    /// already-validated parts into the initial snapshot and starts the
    /// dispatcher thread.
    #[allow(clippy::too_many_arguments)]
    fn start_with_parts(
        model: FrozenModel,
        memory: ShardedClassMemory,
        routed: Option<RoutedClassMemory>,
        threshold: Option<f32>,
        attribute_dim: usize,
        config: ServerConfig,
        version: u64,
        durable: Option<DurableState>,
        stream: StreamControl,
    ) -> Self {
        let feature_dim = model.image_encoder().feature_dim();
        let snapshot = Arc::new(ModelSnapshot {
            version,
            model,
            memory,
            routed,
            threshold,
        });
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            arrivals: Condvar::new(),
            stats: Mutex::new(ServerStats::default()),
            snapshot: Mutex::new(snapshot),
            feature_dim,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatch_loop(&shared, config))
        };
        Self {
            shared,
            control: Mutex::new(ControlPlane {
                attribute_dim,
                durable,
                stream,
            }),
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// Starts a **durable** server: like [`QueryServer::start`], but every
    /// accepted class mutation is appended (and fsynced per
    /// [`DurabilityConfig::sync`]) to a write-ahead log under
    /// [`DurabilityConfig::dir`] *before* its snapshot is published, and the
    /// initial state is saved there as a checkpoint-delta compaction base.
    /// After a crash, [`QueryServer::recover`] on the same directory rebuilds
    /// the exact pre-crash serving state — bit-identical class memory,
    /// same snapshot version.
    ///
    /// The attribute `schema` is pinned for the server's lifetime: compaction
    /// captures model checkpoints against it, and [`QueryServer::swap_model`]
    /// rejects models whose attribute space no longer matches it.
    ///
    /// # Errors
    ///
    /// Everything [`QueryServer::start`] reports, plus
    /// [`ServeError::InvalidConfig`] when the model's attribute encoder does
    /// not match `schema`, and [`ServeError::Wal`] /
    /// [`ServeError::Checkpoint`] when the WAL directory cannot be
    /// initialised.
    pub fn start_durable(
        model: impl Into<FrozenModel>,
        labels: Vec<String>,
        class_attributes: &Matrix,
        schema: &AttributeSchema,
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> Result<Self, ServeError> {
        let model: FrozenModel = model.into();
        validate_class_set(&labels, class_attributes)?;
        validate_config(&config)?;
        if model.attribute_encoder().num_attributes() != schema.num_attributes() {
            return Err(ServeError::InvalidConfig(format!(
                "model encodes {} attributes, the serving schema declares {}",
                model.attribute_encoder().num_attributes(),
                schema.num_attributes()
            )));
        }
        let attribute_dim = class_attributes.cols();
        std::fs::create_dir_all(&durability.dir).map_err(|e| ServeError::Wal(WalError::Io(e)))?;
        let memory = model
            .sharded_class_memory(labels, class_attributes, config.shards)
            .with_threads(config.threads);
        let routed = config
            .routed
            .map(|rc| routed_from_sharded(&memory, rc, config.threads));
        // Base first, then the (empty) log: a crash in between leaves a
        // directory `recover` rejects loudly (no log) rather than one that
        // silently replays nothing against a stale base.
        CheckpointDelta {
            snapshot_version: 0,
            next_record_seq: 0,
            base: Checkpoint::capture(&model, schema),
            memory: memory.clone(),
            routed: routed.clone(),
            threshold: None,
            stream: None,
        }
        .save_json(wal::base_path(&durability.dir))?;
        let log = WriteAheadLog::create(wal::wal_path(&durability.dir), durability.sync)?;
        let durable = DurableState {
            wal: log,
            dir: durability.dir,
            schema: schema.clone(),
            compact_every: durability.compact_every,
            since_compact: 0,
        };
        let stream = StreamControl::fresh(memory.dim(), config.publish_every);
        Ok(Self::start_with_parts(
            model,
            memory,
            routed,
            None,
            attribute_dim,
            config,
            0,
            Some(durable),
            stream,
        ))
    }

    /// Rebuilds a durable server from its WAL directory after a crash (or a
    /// clean shutdown — recovery cannot tell and does not need to): loads
    /// the checkpoint-delta compaction base, replays the WAL suffix
    /// (records with `seq >=` the base's `next_record_seq`), truncates away
    /// a torn final record if one is found, and resumes serving — and
    /// logging — exactly where the pre-crash server left off.
    ///
    /// The rebuilt class memory is **bit-identical** to the last
    /// acknowledged pre-crash snapshot: register/update records replay the
    /// packed prototype words the original server encoded, so no model
    /// arithmetic is ever re-run.
    ///
    /// # Errors
    ///
    /// [`ServeError::Checkpoint`] when the base is missing, malformed, or
    /// does not match `schema`; [`ServeError::Wal`] when the log is
    /// missing, unreadable, or corrupt *before* its final record;
    /// [`ServeError::InvalidConfig`] for a bad `config` or a recovered
    /// state with no classes.
    pub fn recover(
        schema: &AttributeSchema,
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), ServeError> {
        validate_config(&config)?;
        let delta = CheckpointDelta::load_json(wal::base_path(&durability.dir))?;
        delta.base.validate_schema(schema)?;
        let (log, replay) = WriteAheadLog::open(wal::wal_path(&durability.dir), durability.sync)?;
        let CheckpointDelta {
            snapshot_version,
            next_record_seq,
            base,
            memory,
            routed,
            threshold,
            stream,
        } = delta;
        let mut threshold = threshold;
        let mut model = base.into_frozen(schema)?;
        let mut memory = memory.with_threads(config.threads);
        // Resume the base's routed index only when it was built under
        // exactly the requested routed configuration: replaying the same
        // records into the same structure reproduces the pre-crash index
        // bit-for-bit. Otherwise (config changed, routing newly requested,
        // or a pre-routed base) a fresh deterministic build runs after
        // replay.
        let mut routed = match (config.routed, routed) {
            (Some(rc), Some(saved)) if saved.config() == rc => {
                Some(saved.with_threads(config.threads))
            }
            _ => None,
        };
        // Stream state resumes from the base (mid-batch compaction persists
        // the exact counters and batching position); the drift detector is
        // not persisted and is rebuilt by replaying the same publication
        // boundaries the pre-crash server published.
        let mut stream = match stream {
            Some(saved) => StreamControl {
                publish_every: config.publish_every,
                accumulators: saved.accumulators,
                pending: saved.pending.into_iter().collect(),
                since_publish: saved.since_publish,
                observes: 0,
                drift: StreamDriftDetector::new(StreamDriftConfig::default()),
            },
            None => StreamControl::fresh(memory.dim(), config.publish_every),
        };
        // Version accounting replays the pre-crash server's *publication*
        // boundaries, not its record count: every classic mutation record
        // published exactly one snapshot, observes publish only when the
        // `publish_every` cadence fires, and flush records mark the explicit
        // boundaries — so the recovered version matches the last version the
        // pre-crash server acknowledged.
        let mut version = snapshot_version;
        let mut replayed_records = 0u64;
        for entry in &replay.entries {
            // Records the base already folds in (a crash can interleave a
            // fresh base with the not-yet-rotated log; their seqs overlap).
            if entry.seq < next_record_seq {
                continue;
            }
            match &entry.op {
                WalOp::Register { label, words } | WalOp::Update { label, words } => {
                    if words.len() != memory.words_per_row() {
                        return Err(ServeError::Wal(WalError::Corrupt {
                            offset: entry.end_offset,
                            reason: format!(
                                "record {} carries {} prototype words, the memory packs {}",
                                entry.seq,
                                words.len(),
                                memory.words_per_row()
                            ),
                        }));
                    }
                    memory.add_class_packed(label.clone(), words);
                    if let Some(routed) = routed.as_mut() {
                        routed.add_class_packed(label.clone(), words);
                    }
                    // The live path resets a re-pointed class's stream
                    // counters (the old counters described the replaced
                    // prototype); a register is a no-op here.
                    stream.accumulators.remove(label);
                    stream.pending.remove(label);
                    version += 1;
                }
                WalOp::Remove { label } => {
                    memory.remove_class(label);
                    if let Some(routed) = routed.as_mut() {
                        routed.remove_class(label);
                    }
                    stream.accumulators.remove(label);
                    stream.pending.remove(label);
                    stream.drift.remove(label);
                    version += 1;
                }
                WalOp::Swap {
                    checkpoint_json,
                    memory: swapped,
                } => {
                    let checkpoint = Checkpoint::from_json_str(checkpoint_json)?;
                    checkpoint.validate_schema(schema)?;
                    model = checkpoint.into_frozen(schema)?;
                    memory = swapped.clone().with_threads(config.threads);
                    // The live server rebuilds the routed index from the
                    // swapped memory through the same pure function, so the
                    // replayed index matches it exactly.
                    routed = routed
                        .as_ref()
                        .map(|r| routed_from_sharded(&memory, r.config(), config.threads));
                    // A swap replaces the whole class set; stream state
                    // describing the old one is meaningless, exactly like
                    // the live path.
                    stream = StreamControl::fresh(memory.dim(), config.publish_every);
                    version += 1;
                }
                WalOp::SetThreshold { bits } => {
                    let replayed = bits.map(f32::from_bits);
                    if replayed.is_some_and(|t| !t.is_finite()) {
                        return Err(ServeError::Wal(WalError::Corrupt {
                            offset: entry.end_offset,
                            reason: format!(
                                "record {} carries a non-finite rejection threshold",
                                entry.seq
                            ),
                        }));
                    }
                    threshold = replayed;
                    version += 1;
                }
                WalOp::Observe { label, words } => {
                    if words.len() != memory.words_per_row() {
                        return Err(ServeError::Wal(WalError::Corrupt {
                            offset: entry.end_offset,
                            reason: format!(
                                "record {} carries {} example words, the memory packs {}",
                                entry.seq,
                                words.len(),
                                memory.words_per_row()
                            ),
                        }));
                    }
                    let Some(current) = memory.class_words(label).map(<[u64]>::to_vec) else {
                        return Err(ServeError::Wal(WalError::Corrupt {
                            offset: entry.end_offset,
                            reason: format!(
                                "record {} observes unregistered class `{label}`",
                                entry.seq
                            ),
                        }));
                    };
                    fold_observation(
                        &mut stream.accumulators,
                        label,
                        words,
                        &current,
                        memory.dim(),
                    );
                    stream.pending.insert(label.clone());
                    stream.since_publish += 1;
                    stream.observes += 1;
                    if stream.since_publish >= u64::from(stream.publish_every) {
                        let rows = resign_pending(&stream.accumulators, &stream.pending);
                        apply_stream_publish(&mut memory, &mut routed, &mut stream.drift, &rows);
                        stream.pending.clear();
                        stream.since_publish = 0;
                        version += 1;
                    }
                }
                WalOp::Flush => {
                    if !stream.pending.is_empty() {
                        let rows = resign_pending(&stream.accumulators, &stream.pending);
                        apply_stream_publish(&mut memory, &mut routed, &mut stream.drift, &rows);
                        stream.pending.clear();
                        stream.since_publish = 0;
                        version += 1;
                    }
                }
            }
            replayed_records += 1;
        }
        if memory.is_empty() {
            return Err(ServeError::InvalidConfig(
                "recovered state has no registered classes".to_string(),
            ));
        }
        if let (Some(rc), None) = (config.routed, routed.as_ref()) {
            routed = Some(routed_from_sharded(&memory, rc, config.threads));
        }
        let attribute_dim = model.attribute_encoder().num_attributes();
        let report = RecoveryReport {
            snapshot_version: version,
            replayed_records,
            torn_tail: replay.torn_tail.is_some(),
        };
        let durable = DurableState {
            wal: log,
            dir: durability.dir,
            schema: schema.clone(),
            compact_every: durability.compact_every,
            since_compact: replayed_records,
        };
        Ok((
            Self::start_with_parts(
                model,
                memory,
                routed,
                threshold,
                attribute_dim,
                config,
                version,
                Some(durable),
                stream,
            ),
            report,
        ))
    }

    /// Starts a server from a saved [`hdc_zsc::Checkpoint`]: the
    /// train-once / serve-many entry point. The checkpoint is validated
    /// against the serving schema and loaded straight into the immutable
    /// [`FrozenModel`] view ([`hdc_zsc::Checkpoint::into_frozen`]) — no
    /// intermediate mutable model, no extra copy.
    ///
    /// A checkpoint carrying a
    /// [`SimilarityCalibration`](hdc_zsc::SimilarityCalibration) seeds the
    /// server's open-set rejection threshold, so calibrated verdicts
    /// survive the save/load cycle without a separate
    /// [`QueryServer::set_threshold`] call; an uncalibrated checkpoint
    /// starts with no threshold, exactly as before.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Checkpoint`] when the checkpoint does not match
    /// `schema`, plus everything [`QueryServer::start`] reports.
    pub fn from_checkpoint(
        checkpoint: hdc_zsc::Checkpoint,
        schema: &dataset::AttributeSchema,
        labels: Vec<String>,
        class_attributes: &Matrix,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let threshold = checkpoint.calibration.as_ref().map(|c| c.threshold);
        let model = checkpoint.into_frozen(schema)?;
        Self::start_with_threshold(model, labels, class_attributes, config, threshold)
    }

    /// Width of the backbone feature rows the server expects.
    pub fn feature_dim(&self) -> usize {
        self.shared.feature_dim
    }

    /// Width of the class-attribute rows the mutation plane currently
    /// expects ([`QueryServer::register_class`] /
    /// [`QueryServer::update_class`]). Tracks the serving model across
    /// [`QueryServer::swap_model`].
    pub fn attribute_dim(&self) -> usize {
        self.control
            .lock()
            .expect("control mutex poisoned")
            .attribute_dim
    }

    /// Batching and hot-swap counters observed so far.
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock().expect("stats mutex poisoned")
    }

    /// The snapshot queries are currently being scored against. Batches
    /// already in flight may still complete against an older snapshot.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        Arc::clone(
            &self
                .shared
                .snapshot
                .lock()
                .expect("snapshot mutex poisoned"),
        )
    }

    /// Registers a **new** class under `label` from its class-attribute
    /// row, atomically publishing a new snapshot. The class is servable by
    /// the next coalesced batch — no restart, no queue drain; only the
    /// shard the class routes to is repacked.
    ///
    /// Registration never silently overwrites: re-registering an existing
    /// label is rejected with [`ServeError::DuplicateLabel`] — use
    /// [`QueryServer::update_class`] to re-point an existing class. (This
    /// also keeps the durable log replayable without ambiguity: every
    /// logged register is a genuine insert.)
    ///
    /// Returns the snapshot now serving, so callers can record exactly which
    /// version their class became visible in.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateLabel`] when `label` is already
    /// registered, [`ServeError::AttributeWidth`] for a mis-sized attribute
    /// row, and [`ServeError::Wal`] when a durable server cannot log the
    /// mutation (nothing is published then).
    pub fn register_class(
        &self,
        label: impl Into<String>,
        attributes: &[f32],
    ) -> Result<Arc<ModelSnapshot>, ServeError> {
        let mut control = self.control.lock().expect("control mutex poisoned");
        let label = label.into();
        if self.snapshot().memory.contains(&label) {
            return Err(ServeError::DuplicateLabel(label));
        }
        self.register_locked(&mut control, label, attributes, false)
    }

    /// Replaces the attribute row of an *already registered* class; see
    /// [`QueryServer::register_class`] for inserting a new one. The
    /// existence check and the publish happen under one control-mutex
    /// critical section, so a concurrent `remove_class` cannot slip in
    /// between (the update can never resurrect a just-removed class).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownClass`] when `label` is not registered,
    /// [`ServeError::AttributeWidth`] for a mis-sized row, and
    /// [`ServeError::Wal`] when a durable server cannot log the mutation.
    pub fn update_class(
        &self,
        label: &str,
        attributes: &[f32],
    ) -> Result<Arc<ModelSnapshot>, ServeError> {
        let mut control = self.control.lock().expect("control mutex poisoned");
        if !self.snapshot().memory.contains(label) {
            return Err(ServeError::UnknownClass(label.to_string()));
        }
        self.register_locked(&mut control, label.to_string(), attributes, true)
    }

    /// The shared register/update body; the caller must hold the control
    /// mutex (and have done the existence check for its verb) so checks,
    /// encoding, the WAL append, and the publish are atomic with respect to
    /// every other mutation.
    ///
    /// Validation-before-derivation: the attribute-width check runs before
    /// the signature is encoded and before any snapshot state is cloned, so
    /// a rejected request costs nothing but the check. Encoding runs through
    /// the serving snapshot's shared [`FrozenModel`] — one attribute-encoder
    /// forward, zero weight copies. On a durable server the record is
    /// appended (and synced per policy) *before* the snapshot is published:
    /// an append failure rejects the mutation with nothing changed.
    fn register_locked(
        &self,
        control: &mut ControlPlane,
        label: String,
        attributes: &[f32],
        is_update: bool,
    ) -> Result<Arc<ModelSnapshot>, ServeError> {
        if attributes.len() != control.attribute_dim {
            return Err(ServeError::AttributeWidth {
                expected: control.attribute_dim,
                found: attributes.len(),
            });
        }
        let signature = self.snapshot().model.packed_class_signature(attributes);
        if let Some(durable) = control.durable.as_mut() {
            let op = if is_update {
                WalOp::Update {
                    label: label.clone(),
                    words: signature.clone(),
                }
            } else {
                WalOp::Register {
                    label: label.clone(),
                    words: signature.clone(),
                }
            };
            durable.wal.append(&op)?;
        }
        // A re-pointed class's stream counters described the prototype that
        // is being replaced; drop them so the next observe re-seeds from the
        // new row. A fresh register has no counters — this is a no-op.
        control.stream.accumulators.remove(&label);
        control.stream.pending.remove(&label);
        let published = self.publish(|snapshot| {
            let mut memory = snapshot.memory.clone();
            memory.add_class_packed(label.clone(), &signature);
            let routed = snapshot.routed.clone().map(|mut routed| {
                routed.add_class_packed(label, &signature);
                routed
            });
            ModelSnapshot {
                version: snapshot.version + 1,
                model: snapshot.model.clone(),
                memory,
                routed,
                threshold: snapshot.threshold,
            }
        });
        self.maybe_compact(control, &published)?;
        Ok(published)
    }

    /// Unregisters a class, atomically publishing a snapshot without it;
    /// only the shard that held the class is repacked.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownClass`] when `label` is not registered,
    /// [`ServeError::InvalidConfig`] when removing it would leave the
    /// server with no classes at all, and [`ServeError::Wal`] when a
    /// durable server cannot log the removal (nothing is published then).
    pub fn remove_class(&self, label: &str) -> Result<Arc<ModelSnapshot>, ServeError> {
        let mut control = self.control.lock().expect("control mutex poisoned");
        {
            let current = self.snapshot();
            if !current.memory.contains(label) {
                return Err(ServeError::UnknownClass(label.to_string()));
            }
            if current.memory.len() == 1 {
                return Err(ServeError::InvalidConfig(
                    "cannot remove the last registered class".to_string(),
                ));
            }
        }
        if let Some(durable) = control.durable.as_mut() {
            durable.wal.append(&WalOp::Remove {
                label: label.to_string(),
            })?;
        }
        // Every stream trace of the class goes with it.
        control.stream.accumulators.remove(label);
        control.stream.pending.remove(label);
        control.stream.drift.remove(label);
        let published = self.publish(|snapshot| {
            let mut memory = snapshot.memory.clone();
            memory.remove_class(label);
            let routed = snapshot.routed.clone().map(|mut routed| {
                routed.remove_class(label);
                routed
            });
            ModelSnapshot {
                version: snapshot.version + 1,
                model: snapshot.model.clone(),
                memory,
                routed,
                threshold: snapshot.threshold,
            }
        });
        self.maybe_compact(&mut control, &published)?;
        Ok(published)
    }

    /// Replaces the entire serving state — model and class set — with one
    /// atomic snapshot publication (e.g. rolling out a retrained
    /// checkpoint). Queries already coalesced keep their old snapshot; the
    /// next batch is scored by the new model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AttributeWidth`] when the matrix width does not
    /// match the new model's attribute encoder, and
    /// [`ServeError::InvalidConfig`] when the labels and matrix do not line
    /// up, the class set is empty, or the new model expects a different
    /// backbone feature width than the server was started with (in-flight
    /// and future callers would be rejected by the width check). A durable
    /// server additionally rejects models whose attribute space no longer
    /// matches the schema pinned at startup, and reports
    /// [`ServeError::Wal`] when the swap cannot be logged (nothing is
    /// published then).
    pub fn swap_model(
        &self,
        model: impl Into<FrozenModel>,
        labels: Vec<String>,
        class_attributes: &Matrix,
    ) -> Result<Arc<ModelSnapshot>, ServeError> {
        let model: FrozenModel = model.into();
        if labels.len() != class_attributes.rows() {
            return Err(ServeError::InvalidConfig(format!(
                "{} labels for {} class-attribute rows",
                labels.len(),
                class_attributes.rows()
            )));
        }
        if class_attributes.rows() == 0 {
            return Err(ServeError::InvalidConfig(
                "cannot serve an empty class set".to_string(),
            ));
        }
        if model.image_encoder().feature_dim() != self.shared.feature_dim {
            return Err(ServeError::InvalidConfig(format!(
                "swapped model expects feature width {}, the server serves {}",
                model.image_encoder().feature_dim(),
                self.shared.feature_dim
            )));
        }
        // Validated before the control mutex is taken: the attribute encoder
        // asserts this width, and a panic while holding the lock would
        // poison the whole mutation plane.
        let expected_attributes = model.attribute_encoder().num_attributes();
        if class_attributes.cols() != expected_attributes {
            return Err(ServeError::AttributeWidth {
                expected: expected_attributes,
                found: class_attributes.cols(),
            });
        }
        let mut control = self.control.lock().expect("control mutex poisoned");
        if let Some(durable) = control.durable.as_ref() {
            if expected_attributes != durable.schema.num_attributes() {
                return Err(ServeError::InvalidConfig(format!(
                    "swapped model encodes {} attributes, the durable schema pins {}",
                    expected_attributes,
                    durable.schema.num_attributes()
                )));
            }
        }
        let (shards, threads, routed_config) = {
            let current = self.snapshot();
            (
                current.memory.num_shards(),
                current.memory.threads(),
                current.routed.as_ref().map(|r| r.config()),
            )
        };
        let memory = model
            .sharded_class_memory(labels, class_attributes, shards)
            .with_threads(threads);
        let routed = routed_config.map(|rc| routed_from_sharded(&memory, rc, threads));
        if let Some(durable) = control.durable.as_mut() {
            durable.wal.append(&WalOp::Swap {
                checkpoint_json: Checkpoint::capture(&model, &durable.schema).to_json(),
                memory: memory.clone(),
            })?;
        }
        control.attribute_dim = class_attributes.cols();
        // A swap replaces the whole class set: stream counters, pending
        // publications, and drift history all described the old one.
        // Recovery replays swap records with the same reset.
        control.stream = StreamControl::fresh(memory.dim(), control.stream.publish_every);
        // The threshold survives the swap: it is serve-time control state
        // (set/cleared through its own verb), not a property of the model
        // being rolled out. Recovery replays swap records the same way.
        let published = self.publish(move |snapshot| ModelSnapshot {
            version: snapshot.version + 1,
            model,
            memory,
            routed,
            threshold: snapshot.threshold,
        });
        self.maybe_compact(&mut control, &published)?;
        Ok(published)
    }

    /// Sets the open-set rejection threshold, atomically publishing a
    /// snapshot that judges every subsequent query by it: a served top-1
    /// similarity **strictly below** `threshold` comes back with
    /// [`Verdict::Unknown`]. Typically fed from a
    /// [`hdc_zsc::SimilarityCalibrator`] fit offline; the change is one
    /// hot swap — queries already coalesced keep the old snapshot's
    /// verdict rule, nothing drains.
    ///
    /// On a durable server the change is WAL-logged (bit-exactly, as
    /// `f32` bits) before publication, so recovery resumes with the same
    /// verdict boundary.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a non-finite threshold and
    /// [`ServeError::Wal`] when a durable server cannot log the change
    /// (nothing is published then).
    pub fn set_threshold(&self, threshold: f32) -> Result<Arc<ModelSnapshot>, ServeError> {
        if !threshold.is_finite() {
            return Err(ServeError::InvalidConfig(format!(
                "rejection threshold must be finite, got {threshold}"
            )));
        }
        self.store_threshold(Some(threshold))
    }

    /// Clears the open-set rejection threshold, atomically publishing a
    /// snapshot that serves every query without a verdict — the behaviour
    /// of an uncalibrated server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Wal`] when a durable server cannot log the
    /// change (nothing is published then).
    pub fn clear_threshold(&self) -> Result<Arc<ModelSnapshot>, ServeError> {
        self.store_threshold(None)
    }

    /// The shared set/clear body: WAL-append first (durable servers), then
    /// one atomic publish, under the control mutex like every mutation.
    fn store_threshold(&self, threshold: Option<f32>) -> Result<Arc<ModelSnapshot>, ServeError> {
        let mut control = self.control.lock().expect("control mutex poisoned");
        if let Some(durable) = control.durable.as_mut() {
            durable.wal.append(&WalOp::SetThreshold {
                bits: threshold.map(f32::to_bits),
            })?;
        }
        let published = self.publish(|snapshot| ModelSnapshot {
            version: snapshot.version + 1,
            model: snapshot.model.clone(),
            memory: snapshot.memory.clone(),
            routed: snapshot.routed.clone(),
            threshold,
        });
        self.maybe_compact(&mut control, &published)?;
        Ok(published)
    }

    /// Folds one **streamed labeled example** into `label`'s exact
    /// per-class counters — the continual-learning verb. The example is
    /// encoded through the serving snapshot's shared model (one
    /// image-encoder forward, sign-binarized into the packed layout), its
    /// packed words are WAL-logged on a durable server (model-independent
    /// replay, like every other mutation), and the counters advance
    /// immediately. The *served* prototype re-signs at the next publication
    /// boundary: every [`ServerConfig::publish_every`]-th observe, or an
    /// explicit [`QueryServer::flush`].
    ///
    /// The first observe of a class seeds its counters with the
    /// currently-published prototype as one pseudo-example, so the stream
    /// refines the class instead of restarting it. Counters are exact i32
    /// sums — folding is order-independent and the published prototype is a
    /// pure function of the counters, which is what makes kill-and-recover
    /// bit-identical to the uninterrupted run.
    ///
    /// Returns the snapshot published by this observe when it landed on a
    /// publication boundary, `None` otherwise (the counters advanced, the
    /// served prototype did not change yet).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureWidth`] for a mis-sized feature row,
    /// [`ServeError::UnknownClass`] when `label` is not registered (streams
    /// refine existing classes; register first), and [`ServeError::Wal`]
    /// when a durable server cannot log the observation (nothing is folded
    /// then).
    pub fn observe(
        &self,
        label: &str,
        features: &[f32],
    ) -> Result<Option<Arc<ModelSnapshot>>, ServeError> {
        if features.len() != self.shared.feature_dim {
            return Err(ServeError::FeatureWidth {
                expected: self.shared.feature_dim,
                found: features.len(),
            });
        }
        let mut control = self.control.lock().expect("control mutex poisoned");
        let snapshot = self.snapshot();
        let Some(current) = snapshot.memory.class_words(label).map(<[u64]>::to_vec) else {
            return Err(ServeError::UnknownClass(label.to_string()));
        };
        // Encode through the serving snapshot's shared model — the same
        // embed-then-sign path queries take, zero weight copies.
        let embedding = snapshot
            .model
            .embed_images(&Matrix::from_rows(&[features.to_vec()]));
        let words = engine::pack_float_signs(embedding.row(0));
        if let Some(durable) = control.durable.as_mut() {
            durable.wal.append(&WalOp::Observe {
                label: label.to_string(),
                words: words.clone(),
            })?;
        }
        let stream = &mut control.stream;
        fold_observation(
            &mut stream.accumulators,
            label,
            &words,
            &current,
            snapshot.memory.dim(),
        );
        stream.pending.insert(label.to_string());
        stream.since_publish += 1;
        stream.observes += 1;
        if stream.since_publish >= u64::from(stream.publish_every) {
            return self.publish_pending_locked(&mut control).map(Some);
        }
        // No publication, but the WAL grew by one record: keep the
        // compaction cadence honest. A base written mid-batch carries the
        // exact counters and batching position, so this is safe.
        self.maybe_compact(&mut control, &snapshot)?;
        Ok(None)
    }

    /// Publishes every pending streamed-class update right now, without
    /// waiting for the [`ServerConfig::publish_every`] cadence: re-signs
    /// each pending class from its exact counters and hot-swaps one
    /// snapshot carrying all of them. A no-op returning the current
    /// snapshot when nothing is pending (and nothing is logged then).
    ///
    /// On a durable server the explicit boundary is WAL-logged (a `flush`
    /// record), so replay reproduces the exact same publication — and
    /// version — sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Wal`] when a durable server cannot log the
    /// boundary (nothing is published then).
    pub fn flush(&self) -> Result<Arc<ModelSnapshot>, ServeError> {
        let mut control = self.control.lock().expect("control mutex poisoned");
        if control.stream.pending.is_empty() {
            return Ok(self.snapshot());
        }
        if let Some(durable) = control.durable.as_mut() {
            durable.wal.append(&WalOp::Flush)?;
        }
        self.publish_pending_locked(&mut control)
    }

    /// One publication boundary: re-sign every pending class, score its
    /// displacement through the drift detector, publish one snapshot, and
    /// reset the batching position. The caller must hold the control mutex
    /// and have logged whatever record marks this boundary.
    fn publish_pending_locked(
        &self,
        control: &mut ControlPlane,
    ) -> Result<Arc<ModelSnapshot>, ServeError> {
        let stream = &mut control.stream;
        let rows = resign_pending(&stream.accumulators, &stream.pending);
        let drift = &mut stream.drift;
        let published = self.publish(|snapshot| {
            let mut memory = snapshot.memory.clone();
            let mut routed = snapshot.routed.clone();
            apply_stream_publish(&mut memory, &mut routed, drift, &rows);
            ModelSnapshot {
                version: snapshot.version + 1,
                model: snapshot.model.clone(),
                memory,
                routed,
                threshold: snapshot.threshold,
            }
        });
        control.stream.pending.clear();
        control.stream.since_publish = 0;
        self.maybe_compact(control, &published)?;
        Ok(published)
    }

    /// Streaming continual-learning counters: lifetime observes, the
    /// batching position, and the drift detector's publication/alarm
    /// totals.
    pub fn stream_stats(&self) -> StreamStats {
        let control = self.control.lock().expect("control mutex poisoned");
        let stream = &control.stream;
        StreamStats {
            observes: stream.observes,
            pending_classes: stream.pending.len() as u64,
            since_publish: stream.since_publish,
            publishes: stream.drift.publishes(),
            drift_alarms: stream.drift.alarms(),
        }
    }

    /// The full per-class drift report — EWMA displacement trends and
    /// Page–Hinkley statistics for every streamed class; see
    /// [`metrics::stream`].
    pub fn drift_report(&self) -> DriftReport {
        self.control
            .lock()
            .expect("control mutex poisoned")
            .stream
            .drift
            .report()
    }

    /// Durability counters of a durable server — live WAL file size,
    /// records since the last compaction, and the next record sequence
    /// number. `None` on a non-durable server.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        let control = self.control.lock().expect("control mutex poisoned");
        control.durable.as_ref().map(|durable| DurabilityStats {
            wal_bytes: std::fs::metadata(durable.wal.path())
                .map(|m| m.len())
                .unwrap_or(0),
            records_since_compaction: durable.since_compact,
            next_record_seq: durable.wal.next_seq(),
        })
    }

    /// Folds the log into a fresh compaction base right now, regardless of
    /// the [`DurabilityConfig::compact_every`] policy. Returns `Ok(true)`
    /// when a base was written, `Ok(false)` on a non-durable server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Checkpoint`] / [`ServeError::Wal`] when the
    /// base or rotated log cannot be written; the previous base and log
    /// remain fully replayable in that case.
    pub fn compact(&self) -> Result<bool, ServeError> {
        let mut control = self.control.lock().expect("control mutex poisoned");
        let ControlPlane {
            durable, stream, ..
        } = &mut *control;
        let Some(durable) = durable.as_mut() else {
            return Ok(false);
        };
        let snapshot = self.snapshot();
        Self::compact_locked(durable, &snapshot, stream.checkpoint())?;
        Ok(true)
    }

    /// Counts one logged mutation towards the compaction policy and folds
    /// the log when it is due. Called with the control mutex held, right
    /// after `published` was stored.
    fn maybe_compact(
        &self,
        control: &mut ControlPlane,
        published: &ModelSnapshot,
    ) -> Result<(), ServeError> {
        let ControlPlane {
            durable, stream, ..
        } = control;
        let Some(durable) = durable.as_mut() else {
            return Ok(());
        };
        durable.since_compact += 1;
        if durable.compact_every == 0 || durable.since_compact < durable.compact_every {
            return Ok(());
        }
        Self::compact_locked(durable, published, stream.checkpoint())
    }

    /// Writes `snapshot` as the new checkpoint-delta base, then rotates the
    /// log — in that order, so a crash between the two leaves a base whose
    /// `next_record_seq` simply skips the old log's already-folded records.
    ///
    /// `stream` captures the continual-learning counters and batching
    /// position at the same instant, so a base written mid-batch still
    /// recovers counter-exactly.
    fn compact_locked(
        durable: &mut DurableState,
        snapshot: &ModelSnapshot,
        stream: Option<StreamCheckpoint>,
    ) -> Result<(), ServeError> {
        CheckpointDelta {
            snapshot_version: snapshot.version,
            next_record_seq: durable.wal.next_seq(),
            base: Checkpoint::capture(&snapshot.model, &durable.schema),
            memory: snapshot.memory.clone(),
            routed: snapshot.routed.clone(),
            threshold: snapshot.threshold,
            stream,
        }
        .save_json(wal::base_path(&durable.dir))?;
        durable.wal.rotate()?;
        durable.since_compact = 0;
        Ok(())
    }

    /// Builds the next snapshot from the current one and stores it; the
    /// caller must hold the control mutex so versions are strictly ordered.
    fn publish<F>(&self, next: F) -> Arc<ModelSnapshot>
    where
        F: FnOnce(&ModelSnapshot) -> ModelSnapshot,
    {
        let mut slot = self
            .shared
            .snapshot
            .lock()
            .expect("snapshot mutex poisoned");
        let swapped = Arc::new(next(&slot));
        *slot = Arc::clone(&swapped);
        drop(slot);
        self.shared
            .stats
            .lock()
            .expect("stats mutex poisoned")
            .swaps += 1;
        swapped
    }

    /// Submits one backbone-feature row and blocks until its top-k labels
    /// come back.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureWidth`] for mis-sized rows,
    /// [`ServeError::Draining`] when the server was already stopping at
    /// submission, and [`ServeError::Stopped`] when it dies mid-query.
    pub fn query(&self, features: &[f32]) -> Result<Vec<ScoredLabel>, ServeError> {
        self.query_traced(features).map(|(_, top)| top)
    }

    /// Like [`QueryServer::query`], additionally reporting the version of
    /// the [`ModelSnapshot`] that served the query — the handle for
    /// verifying the bit-identity contract under concurrent hot swaps.
    ///
    /// # Errors
    ///
    /// Same as [`QueryServer::query`].
    pub fn query_traced(&self, features: &[f32]) -> Result<(u64, Vec<ScoredLabel>), ServeError> {
        self.query_with_verdict(features)
            .map(|(version, top, _)| (version, top))
    }

    /// Like [`QueryServer::query_traced`], additionally reporting the
    /// serving snapshot's open-set [`Verdict`] — `None` when that snapshot
    /// carried no rejection threshold. The verdict is computed by the
    /// dispatcher against the *same* snapshot that scored the query, so a
    /// concurrent [`QueryServer::set_threshold`] can never judge a query by
    /// a threshold the reported version does not carry.
    ///
    /// # Errors
    ///
    /// Same as [`QueryServer::query`].
    pub fn query_with_verdict(&self, features: &[f32]) -> Result<ServedResult, ServeError> {
        let mut results = self.enqueue(vec![features.to_vec()])?;
        Ok(results.pop().expect("one result per submitted row"))
    }

    /// Submits a small batch of feature rows and blocks until all of their
    /// top-k results come back (in submission order).
    ///
    /// The rows enter the same admission queue as everyone else's, so they
    /// may be coalesced with other callers' queries or split across engine
    /// dispatches (and, across a hot swap, even be served by different
    /// snapshot versions).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureWidth`] for mis-sized rows (the whole
    /// batch is rejected before anything is enqueued),
    /// [`ServeError::Draining`] when the server was already stopping at
    /// submission, and [`ServeError::Stopped`] when it dies mid-query.
    pub fn query_batch(&self, rows: &[Vec<f32>]) -> Result<Vec<Vec<ScoredLabel>>, ServeError> {
        Ok(self
            .enqueue(rows.to_vec())?
            .into_iter()
            .map(|(_, top, _)| top)
            .collect())
    }

    /// Validates widths, enqueues the owned rows (no further copies — the
    /// dispatcher moves them out of the queue), and blocks for the results.
    fn enqueue(&self, rows: Vec<Vec<f32>>) -> Result<Vec<ServedResult>, ServeError> {
        for row in &rows {
            if row.len() != self.shared.feature_dim {
                return Err(ServeError::FeatureWidth {
                    expected: self.shared.feature_dim,
                    found: row.len(),
                });
            }
        }
        let mut receivers = Vec::with_capacity(rows.len());
        {
            let mut queue = self.shared.queue.lock().expect("queue mutex poisoned");
            if queue.shutdown {
                return Err(ServeError::Draining);
            }
            for features in rows {
                let (tx, rx) = mpsc::channel();
                queue.pending.push_back(Request {
                    features,
                    responder: tx,
                });
                receivers.push(rx);
            }
        }
        self.shared.arrivals.notify_all();
        receivers
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| ServeError::Stopped))
            .collect()
    }

    /// Stops the server, draining first: queries already admitted are still
    /// scored and answered, submissions arriving from now on are rejected
    /// with [`ServeError::Draining`], and the call blocks until the
    /// dispatcher has answered the last drained query. A durable server's
    /// log is fsynced one final time on the way out.
    ///
    /// Idempotent and callable from any thread holding `&self`; `Drop` runs
    /// it too, so an explicit call is only needed to stop a shared server
    /// while other handles are still alive.
    pub fn stop(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue mutex poisoned");
            queue.shutdown = true;
        }
        self.shared.arrivals.notify_all();
        let handle = self
            .dispatcher
            .lock()
            .expect("dispatcher mutex poisoned")
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        // Best-effort: every acknowledged mutation was already synced per
        // policy; this only tightens a trailing EveryN batch.
        if let Ok(mut control) = self.control.lock() {
            if let Some(durable) = control.durable.as_mut() {
                let _ = durable.wal.sync();
            }
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The canonical routed-index build for a freshly (re)built sharded memory:
/// feed the memory's classes in its own deterministic label order, then run
/// one seeded clustering over the final set. A pure function of the
/// memory's contents and `config`, shared by the constructors,
/// [`QueryServer::swap_model`], *and* WAL replay of swap records — which is
/// what makes a recovered routed index bit-identical to the one the
/// pre-crash server published.
fn routed_from_sharded(
    memory: &ShardedClassMemory,
    config: RoutedConfig,
    threads: usize,
) -> RoutedClassMemory {
    let mut routed = RoutedClassMemory::new(memory.dim(), config);
    let labels: Vec<String> = memory.labels().map(str::to_string).collect();
    for label in labels {
        let words = memory
            .class_words(&label)
            .expect("label just listed")
            .to_vec();
        routed.add_class_packed(label, &words);
    }
    routed.recluster();
    routed.with_threads(threads)
}

/// Unpacks one packed ±1 prototype row back into sign components (set bit
/// = −1, the engine's packing convention) — the bridge from the serving
/// layer's packed words to the [`hdc`] crate's counter arithmetic.
fn unpack_words(words: &[u64], dim: usize) -> Vec<i8> {
    (0..dim)
        .map(|i| {
            if (words[i / 64] >> (i % 64)) & 1 == 1 {
                -1
            } else {
                1
            }
        })
        .collect()
}

/// Folds one observed example (as packed sign words) into `label`'s
/// counters. The **first** observe of a label seeds its accumulator with
/// the class's currently-published prototype as one pseudo-example, so the
/// stream refines the existing class instead of restarting it from scratch;
/// replay reproduces the seeding deterministically because the replayed
/// memory holds the same prototype at the same record position.
///
/// Shared verbatim by the live observe path and WAL replay — which is what
/// makes recovered counters bit-identical.
fn fold_observation(
    accumulators: &mut ClassAccumulator,
    label: &str,
    example_words: &[u64],
    current_class_words: &[u64],
    dim: usize,
) {
    if !accumulators.contains(label) {
        let seed = BipolarHypervector::from_signs(&unpack_words(current_class_words, dim));
        accumulators
            .observe(label, &seed)
            .expect("seed prototype width matches the accumulator by construction");
    }
    let example = BipolarHypervector::from_signs(&unpack_words(example_words, dim));
    accumulators
        .observe(label, &example)
        .expect("observe width was validated against the serving memory");
}

/// Re-signs every pending class from its exact counters into packed
/// prototype rows, in sorted label order — the deterministic payload of one
/// publication boundary.
fn resign_pending(
    accumulators: &ClassAccumulator,
    pending: &BTreeSet<String>,
) -> Vec<(String, Vec<u64>)> {
    pending
        .iter()
        .map(|label| {
            let prototype = accumulators
                .prototype(label)
                .expect("pending labels always have an accumulator");
            (label.clone(), engine::pack_signs(prototype.as_slice()))
        })
        .collect()
}

/// Normalized Hamming displacement between two packed rows of the same
/// dimensionality: differing sign positions over `dim`, in `[0, 1]`. Tail
/// bits beyond `dim` are zero under the packing contract, so a plain XOR
/// popcount is exact.
fn normalized_displacement(old: &[u64], new: &[u64], dim: usize) -> f64 {
    debug_assert_eq!(old.len(), new.len());
    let differing: u32 = old.iter().zip(new).map(|(a, b)| (a ^ b).count_ones()).sum();
    f64::from(differing) / dim as f64
}

/// Applies one publication boundary to a memory (and routed index): per
/// pending class, scores the prototype displacement through the drift
/// detector, then writes the re-signed row. A Page–Hinkley alarm on any
/// class triggers one deterministic recluster of the routed index — the
/// serving response to detected concept drift. Returns whether any class
/// alarmed.
///
/// Shared verbatim by the live publish path and WAL replay.
fn apply_stream_publish(
    memory: &mut ShardedClassMemory,
    routed: &mut Option<RoutedClassMemory>,
    drift: &mut StreamDriftDetector,
    rows: &[(String, Vec<u64>)],
) -> bool {
    let dim = memory.dim();
    let mut alarmed = false;
    for (label, words) in rows {
        let displacement = memory
            .class_words(label)
            .map(|old| normalized_displacement(old, words, dim))
            .unwrap_or(1.0);
        if drift.record(label, displacement) {
            alarmed = true;
        }
        memory.add_class_packed(label.clone(), words);
        if let Some(routed) = routed.as_mut() {
            routed.add_class_packed(label.clone(), words);
        }
    }
    if alarmed {
        if let Some(routed) = routed.as_mut() {
            routed.recluster();
        }
    }
    alarmed
}

/// The label/matrix agreement checks shared by every constructor.
fn validate_class_set(labels: &[String], class_attributes: &Matrix) -> Result<(), ServeError> {
    if labels.len() != class_attributes.rows() {
        return Err(ServeError::InvalidConfig(format!(
            "{} labels for {} class-attribute rows",
            labels.len(),
            class_attributes.rows()
        )));
    }
    if class_attributes.rows() == 0 {
        return Err(ServeError::InvalidConfig(
            "cannot serve an empty class set".to_string(),
        ));
    }
    Ok(())
}

/// The [`ServerConfig`] sanity checks shared by every constructor.
fn validate_config(config: &ServerConfig) -> Result<(), ServeError> {
    if config.max_batch == 0 {
        return Err(ServeError::InvalidConfig(
            "max_batch must be at least 1".to_string(),
        ));
    }
    if config.top_k == 0 {
        return Err(ServeError::InvalidConfig(
            "top_k must be at least 1".to_string(),
        ));
    }
    if config.shards == 0 {
        return Err(ServeError::InvalidConfig(
            "shards must be at least 1".to_string(),
        ));
    }
    if config.publish_every == 0 {
        return Err(ServeError::InvalidConfig(
            "publish_every must be at least 1".to_string(),
        ));
    }
    Ok(())
}

/// The dispatcher: collect → pick up snapshot → embed → pack → score →
/// respond, forever.
///
/// Embedding runs through the snapshot's shared [`FrozenModel`] (`&self`
/// inference, no activation caches), so the dispatcher holds no model state
/// of its own and a swap costs it exactly one `Arc` load — never a weight
/// copy.
fn dispatch_loop(shared: &Shared, config: ServerConfig) {
    while let Some(mut batch) = collect_batch(shared, config.max_batch, config.max_wait_us) {
        let snapshot = Arc::clone(&shared.snapshot.lock().expect("snapshot mutex poisoned"));
        let rows: Vec<Vec<f32>> = batch
            .iter_mut()
            .map(|r| std::mem::take(&mut r.features))
            .collect();
        let features = Matrix::from_rows(&rows);
        // Inference-mode embedding (no caches), then sign-binarization into
        // the engine's packed query layout — the same path
        // `ZscModel::sharded_class_memory` uses for the class side.
        let embeddings = snapshot.model.embed_images(&features);
        let queries = PackedQueryBatch::from_sign_matrix(&embeddings);
        let topk = match &snapshot.routed {
            Some(routed) => routed.topk_batch(&queries, config.top_k),
            None => snapshot.memory.topk_batch(&queries, config.top_k),
        };
        {
            let mut stats = shared.stats.lock().expect("stats mutex poisoned");
            stats.queries += batch.len() as u64;
            stats.batches += 1;
            stats.max_batch_observed = stats.max_batch_observed.max(batch.len());
        }
        for (request, result) in batch.into_iter().zip(topk) {
            let labelled: Vec<ScoredLabel> = result
                .into_iter()
                .map(|(label, sim)| (label.to_string(), sim))
                .collect();
            // Judged by the same snapshot that scored it — threshold swaps
            // can never split a query's scores from its verdict.
            let verdict = snapshot.verdict(&labelled);
            // A disconnected receiver just means the caller gave up; drop it.
            let _ = request
                .responder
                .send((snapshot.version, labelled, verdict));
        }
    }
}

/// Blocks until at least one request is queued, then keeps collecting until
/// the batch is full, the coalescing window expires, or shutdown is
/// requested. Returns `None` once the server is shut down *and* drained.
fn collect_batch(shared: &Shared, max_batch: usize, max_wait_us: u64) -> Option<Vec<Request>> {
    let mut queue = shared.queue.lock().expect("queue mutex poisoned");
    loop {
        if !queue.pending.is_empty() {
            break;
        }
        if queue.shutdown {
            return None;
        }
        queue = shared.arrivals.wait(queue).expect("queue mutex poisoned");
    }
    let deadline = Instant::now() + Duration::from_micros(max_wait_us);
    while queue.pending.len() < max_batch && !queue.shutdown {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, timeout) = shared
            .arrivals
            .wait_timeout(queue, deadline - now)
            .expect("queue mutex poisoned");
        queue = guard;
        if timeout.timed_out() {
            break;
        }
    }
    let take = queue.pending.len().min(max_batch);
    Some(queue.pending.drain(..take).collect())
}
