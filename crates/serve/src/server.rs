//! The query server: a micro-batching admission queue in front of the
//! batched inference engine.
//!
//! Concurrent callers submit single backbone-feature rows (or small batches)
//! through [`QueryServer::query`] / [`QueryServer::query_batch`]. A
//! dedicated dispatcher thread coalesces whatever is queued — up to
//! [`ServerConfig::max_batch`] requests, waiting at most
//! [`ServerConfig::max_wait_us`] after the first arrival — embeds the batch
//! through the model's image encoder, sign-binarizes the embeddings, and
//! scores them against the packed class memory with an
//! [`engine::BatchScorer`] fanned out over the `minipool` pool. Each caller
//! receives its own top-k labels.
//!
//! Results are **bit-identical** to scoring the same query alone: per-query
//! scores are independent rows of the batched popcount sweep (the engine's
//! exactness contract), so micro-batching trades latency for throughput
//! without changing a single output bit.

use engine::{BatchScorer, PackedClassMemory, PackedQueryBatch, Pool};
use hdc_zsc::ZscModel;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tensor::Matrix;

/// Admission-queue and scoring configuration of a [`QueryServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Largest batch the dispatcher hands to the engine at once.
    pub max_batch: usize,
    /// How long (µs) the dispatcher waits after the first queued request for
    /// more requests to coalesce before dispatching a partial batch.
    pub max_wait_us: u64,
    /// Thread count of the engine pool the batch is scored across.
    pub threads: usize,
    /// How many labels each query gets back, most similar first.
    pub top_k: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait_us: 200,
            threads: Pool::auto().threads(),
            top_k: 5,
        }
    }
}

/// One scored label: `(class label, similarity in [-1, 1])`.
pub type ScoredLabel = (String, f32);

/// Why a query could not be served.
#[derive(Debug)]
pub enum ServeError {
    /// The server was (or is being) shut down before the query completed.
    Stopped,
    /// A submitted feature row has the wrong width.
    FeatureWidth {
        /// Width the model's backbone expects.
        expected: usize,
        /// Width the caller submitted.
        found: usize,
    },
    /// The server could not be constructed from the given parts.
    InvalidConfig(String),
    /// A checkpoint could not be loaded or validated.
    Checkpoint(hdc_zsc::CheckpointError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Stopped => write!(f, "query server is stopped"),
            ServeError::FeatureWidth { expected, found } => write!(
                f,
                "feature row has width {found}, the model expects {expected}"
            ),
            ServeError::InvalidConfig(msg) => write!(f, "invalid server configuration: {msg}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdc_zsc::CheckpointError> for ServeError {
    fn from(e: hdc_zsc::CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

/// Counters describing the batching behaviour observed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct ServerStats {
    /// Queries answered.
    pub queries: u64,
    /// Engine dispatches (each serving one coalesced batch).
    pub batches: u64,
    /// Largest coalesced batch observed.
    pub max_batch_observed: usize,
}

impl ServerStats {
    /// Mean coalesced batch size (0 when nothing was dispatched).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries as f64 / self.batches as f64
        }
    }
}

/// One queued query: the feature row plus the channel its result goes back
/// on.
#[derive(Debug)]
struct Request {
    features: Vec<f32>,
    responder: mpsc::Sender<Vec<ScoredLabel>>,
}

/// State shared between callers and the dispatcher thread.
#[derive(Debug)]
struct Shared {
    queue: Mutex<QueueState>,
    arrivals: Condvar,
    stats: Mutex<ServerStats>,
    feature_dim: usize,
}

#[derive(Debug)]
struct QueueState {
    pending: VecDeque<Request>,
    shutdown: bool,
}

/// A running query server; see the module docs.
///
/// Dropping the server drains every already-queued request, then stops the
/// dispatcher thread.
///
/// # Example
///
/// ```
/// use dataset::AttributeSchema;
/// use hdc_zsc::{ModelConfig, ZscModel};
/// use serve::{QueryServer, ServerConfig};
/// use tensor::Matrix;
///
/// let schema = AttributeSchema::cub200();
/// let model = ZscModel::new(&ModelConfig::tiny(), &schema, 16);
/// let class_attributes = Matrix::ones(3, 312);
/// let labels = vec!["a".into(), "b".into(), "c".into()];
/// let server =
///     QueryServer::start(model, labels, &class_attributes, ServerConfig::default()).unwrap();
/// let top = server.query(&[0.25; 16]).unwrap();
/// assert!(!top.is_empty());
/// ```
#[derive(Debug)]
pub struct QueryServer {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Starts a server around a trained model and the class set it serves:
    /// one label per row of `class_attributes`.
    ///
    /// The class-attribute matrix is encoded once into sign-binarized class
    /// signatures (the engine's packed representation); queries then run
    /// entirely through the popcount path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the labels, matrix and
    /// configuration do not line up.
    pub fn start(
        mut model: ZscModel,
        labels: Vec<String>,
        class_attributes: &Matrix,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        if labels.len() != class_attributes.rows() {
            return Err(ServeError::InvalidConfig(format!(
                "{} labels for {} class-attribute rows",
                labels.len(),
                class_attributes.rows()
            )));
        }
        if class_attributes.rows() == 0 {
            return Err(ServeError::InvalidConfig(
                "cannot serve an empty class set".to_string(),
            ));
        }
        if config.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".to_string(),
            ));
        }
        if config.top_k == 0 {
            return Err(ServeError::InvalidConfig(
                "top_k must be at least 1".to_string(),
            ));
        }
        let memory = model.packed_class_memory(labels, class_attributes);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            arrivals: Condvar::new(),
            stats: Mutex::new(ServerStats::default()),
            feature_dim: model.image_encoder().feature_dim(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatch_loop(&shared, model, &memory, config))
        };
        Ok(Self {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// Starts a server from a saved [`hdc_zsc::Checkpoint`]: the
    /// train-once / serve-many entry point. The checkpoint is validated
    /// against the serving schema before the model is accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Checkpoint`] when the checkpoint does not match
    /// `schema`, plus everything [`QueryServer::start`] reports.
    pub fn from_checkpoint(
        checkpoint: hdc_zsc::Checkpoint,
        schema: &dataset::AttributeSchema,
        labels: Vec<String>,
        class_attributes: &Matrix,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let model = checkpoint.into_model(schema)?;
        Self::start(model, labels, class_attributes, config)
    }

    /// Width of the backbone feature rows the server expects.
    pub fn feature_dim(&self) -> usize {
        self.shared.feature_dim
    }

    /// Batching counters observed so far.
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock().expect("stats mutex poisoned")
    }

    /// Submits one backbone-feature row and blocks until its top-k labels
    /// come back.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureWidth`] for mis-sized rows and
    /// [`ServeError::Stopped`] when the server shuts down first.
    pub fn query(&self, features: &[f32]) -> Result<Vec<ScoredLabel>, ServeError> {
        let mut results = self.enqueue(vec![features.to_vec()])?;
        Ok(results.pop().expect("one result per submitted row"))
    }

    /// Submits a small batch of feature rows and blocks until all of their
    /// top-k results come back (in submission order).
    ///
    /// The rows enter the same admission queue as everyone else's, so they
    /// may be coalesced with other callers' queries or split across engine
    /// dispatches.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureWidth`] for mis-sized rows (the whole
    /// batch is rejected before anything is enqueued) and
    /// [`ServeError::Stopped`] when the server shuts down first.
    pub fn query_batch(&self, rows: &[Vec<f32>]) -> Result<Vec<Vec<ScoredLabel>>, ServeError> {
        self.enqueue(rows.to_vec())
    }

    /// Validates widths, enqueues the owned rows (no further copies — the
    /// dispatcher moves them out of the queue), and blocks for the results.
    fn enqueue(&self, rows: Vec<Vec<f32>>) -> Result<Vec<Vec<ScoredLabel>>, ServeError> {
        for row in &rows {
            if row.len() != self.shared.feature_dim {
                return Err(ServeError::FeatureWidth {
                    expected: self.shared.feature_dim,
                    found: row.len(),
                });
            }
        }
        let mut receivers = Vec::with_capacity(rows.len());
        {
            let mut queue = self.shared.queue.lock().expect("queue mutex poisoned");
            if queue.shutdown {
                return Err(ServeError::Stopped);
            }
            for features in rows {
                let (tx, rx) = mpsc::channel();
                queue.pending.push_back(Request {
                    features,
                    responder: tx,
                });
                receivers.push(rx);
            }
        }
        self.shared.arrivals.notify_all();
        receivers
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| ServeError::Stopped))
            .collect()
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue mutex poisoned");
            queue.shutdown = true;
        }
        self.shared.arrivals.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// The dispatcher: collect → embed → pack → score → respond, forever.
fn dispatch_loop(
    shared: &Shared,
    mut model: ZscModel,
    memory: &PackedClassMemory,
    config: ServerConfig,
) {
    let scorer = BatchScorer::new(memory).with_threads(config.threads);
    while let Some(mut batch) = collect_batch(shared, config.max_batch, config.max_wait_us) {
        let rows: Vec<Vec<f32>> = batch
            .iter_mut()
            .map(|r| std::mem::take(&mut r.features))
            .collect();
        let features = Matrix::from_rows(&rows);
        // Inference-mode embedding (no caches), then sign-binarization into
        // the engine's packed query layout — the same path
        // `ZscModel::packed_class_memory` uses for the class side.
        let embeddings = model.embed_images(&features, false);
        let queries = PackedQueryBatch::from_sign_matrix(&embeddings);
        let topk = scorer.topk_batch(&queries, config.top_k);
        {
            let mut stats = shared.stats.lock().expect("stats mutex poisoned");
            stats.queries += batch.len() as u64;
            stats.batches += 1;
            stats.max_batch_observed = stats.max_batch_observed.max(batch.len());
        }
        for (request, result) in batch.into_iter().zip(topk) {
            let labelled: Vec<ScoredLabel> = result
                .into_iter()
                .map(|(index, sim)| (memory.label(index).to_string(), sim))
                .collect();
            // A disconnected receiver just means the caller gave up; drop it.
            let _ = request.responder.send(labelled);
        }
    }
}

/// Blocks until at least one request is queued, then keeps collecting until
/// the batch is full, the coalescing window expires, or shutdown is
/// requested. Returns `None` once the server is shut down *and* drained.
fn collect_batch(shared: &Shared, max_batch: usize, max_wait_us: u64) -> Option<Vec<Request>> {
    let mut queue = shared.queue.lock().expect("queue mutex poisoned");
    loop {
        if !queue.pending.is_empty() {
            break;
        }
        if queue.shutdown {
            return None;
        }
        queue = shared.arrivals.wait(queue).expect("queue mutex poisoned");
    }
    let deadline = Instant::now() + Duration::from_micros(max_wait_us);
    while queue.pending.len() < max_batch && !queue.shutdown {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, timeout) = shared
            .arrivals
            .wait_timeout(queue, deadline - now)
            .expect("queue mutex poisoned");
        queue = guard;
        if timeout.timed_out() {
            break;
        }
    }
    let take = queue.pending.len().min(max_batch);
    Some(queue.pending.drain(..take).collect())
}
