//! End-to-end train-once / serve-many driver, including serve-time class
//! registration.
//!
//! Exercises the full deployment lifecycle on a synthetic CUB-like dataset:
//!
//! 1. **train** — `Pipeline::run_returning_model` (the returned model is the
//!    exact model behind the reported outcome);
//! 2. **save** — `Checkpoint::save_json`;
//! 3. **load** — `Checkpoint::load_json` into a fresh model object;
//! 4. **serve** — a [`serve::QueryServer`] answers a simulated traffic mix
//!    (several caller threads, mixed single queries and small batches)
//!    over the evaluation classes *minus* `--register N` held-out classes;
//! 5. **register** — the held-out classes are registered through the live
//!    server (`register_class`; one snapshot swap per class, no restart,
//!    no queue drain);
//! 6. **re-serve** — the same traffic mix runs again over *all* evaluation
//!    classes, now served by the swapped snapshots.
//!
//! Every served top-1 is cross-checked against direct in-process scoring of
//! the loaded model — phase 4 against the initial class set, phase 6 against
//! the full post-registration set — they must be bit-identical. The output
//! is a single JSON object on stdout with the same per-path stats shape as
//! `serve_sim` (queries / elapsed_s / qps / p50_us / p95_us / p99_us, via
//! the shared ceiling nearest-rank percentile helper).
//!
//! **Durability drill:** with `--wal-dir PATH` the server runs durable —
//! every live registration is write-ahead-logged before it is published.
//! Adding `--kill-after-register` hard-exits the process right after the
//! registration phase (no destructors, simulating a crash), first recording
//! a probe file of queries and their expected bit-exact answers. A second
//! invocation with `--wal-dir PATH --recover` then rebuilds the server from
//! the log alone and asserts every probe answers bit-identically.
//!
//! **Network load generator:** `--net` switches to an alternative mode that
//! binds the TCP front-end ([`serve::net::NetServer`]) over a freshly
//! trained model and drives it with an open-loop load generator, sweeping
//! the `--net-qps` target levels. Each step reports offered load vs goodput
//! plus p50/p95/p99 latency; load-shed requests are the typed `overloaded`
//! rejections of the wire protocol and are dropped, not retried, so goodput
//! under overload is visible. Every answered query is cross-checked
//! bit-identically against `ModelSnapshot::solo_topk`. See
//! `docs/operations.md` for how to read the report.
//!
//! `--net-addr host:port` points the same load generator at an
//! **already-running** front-end instead of standing one up: no model is
//! trained, the query pool is synthesized in the feature width the remote
//! `welcome` frame declares, and — with no local model to score against —
//! the bit-identity cross-check is *skipped and reported as skipped* in
//! both the log and the JSON (`"bit_identity": "skipped"`). No mutation
//! drill runs against a remote server.
//!
//! **Calibration drill:** `--calibrate` switches to a generalized
//! zero-shot + open-set mode over the attribute-level
//! [`dataset::GzslWorkload`] generator (see `docs/evaluation.md`). It
//! evaluates the GZSL H metric over the seen/unseen partition, fits a
//! rejection threshold on the served known-query similarities
//! ([`hdc_zsc::SimilarityCalibrator`], 10% target false-reject rate),
//! installs it on the live server (`set_threshold`, one snapshot swap),
//! and re-serves the mixed known + distractor traffic asserting every
//! `unknown` verdict is bit-consistent with
//! [`serve::ModelSnapshot::solo_topk`] recomputation and the empirical
//! false-reject rate stays at or under the target. The JSON report
//! carries the H metric, the fitted threshold (raw `f32` bits), verdict
//! counts, rejection precision/recall, and AUROC.
//!
//! ```text
//! zsc_serve [--classes N] [--images N] [--feature-dim N] [--epochs N]
//!           [--queries N] [--callers N] [--max-batch N] [--max-wait-us N]
//!           [--threads N] [--top-k K] [--shards N] [--register N]
//!           [--seed N] [--checkpoint PATH] [--wal-dir PATH] [--recover]
//!           [--kill-after-register] [--net] [--net-addr HOST:PORT]
//!           [--net-qps A,B,..] [--net-clients N] [--net-requests N]
//!           [--net-admission N] [--calibrate] [--quick] [--json]
//! ```

use dataset::{
    AttributeSchema, CubLikeDataset, DatasetConfig, GzslWorkload, GzslWorkloadConfig, SplitKind,
    StreamWorkload, StreamWorkloadConfig,
};
use engine::ShardedClassMemory;
use hdc_zsc::{
    evaluate_gzsl, Checkpoint, ModelConfig, Pipeline, SimilarityCalibrator, TrainConfig, ZscModel,
};
use serde::{Serialize, Value};
use serve::net::{wire, ClientConfig, NetClient, NetConfig, NetServer};
use serve::{DurabilityConfig, QueryServer, ScoredLabel, ServerConfig};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tensor::Matrix;

/// Workload configuration parsed from the command line.
#[derive(Debug, Clone)]
struct Config {
    classes: usize,
    images: usize,
    feature_dim: usize,
    epochs: usize,
    queries: usize,
    callers: usize,
    max_batch: usize,
    max_wait_us: u64,
    threads: usize,
    top_k: usize,
    shards: usize,
    register: usize,
    seed: u64,
    checkpoint: std::path::PathBuf,
    wal_dir: Option<std::path::PathBuf>,
    recover: bool,
    kill_after_register: bool,
    net: bool,
    net_addr: Option<String>,
    net_qps: Vec<u64>,
    net_clients: usize,
    net_requests: usize,
    net_admission: usize,
    calibrate: bool,
    stream: bool,
    json: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            classes: 20,
            images: 8,
            feature_dim: 64,
            epochs: 4,
            queries: 2048,
            callers: 4,
            max_batch: 64,
            max_wait_us: 200,
            threads: engine::Pool::auto().threads(),
            top_k: 5,
            shards: 4,
            register: 3,
            seed: 42,
            checkpoint: std::env::temp_dir().join("zsc_serve_checkpoint.json"),
            wal_dir: None,
            recover: false,
            kill_after_register: false,
            net: false,
            net_addr: None,
            net_qps: vec![2_000, 8_000, 32_000],
            net_clients: 8,
            net_requests: 2_000,
            net_admission: 64,
            calibrate: false,
            stream: false,
            json: false,
        }
    }
}

fn parse_args() -> Config {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--classes" => config.classes = value("--classes").parse().expect("--classes"),
            "--images" => config.images = value("--images").parse().expect("--images"),
            "--feature-dim" => {
                config.feature_dim = value("--feature-dim").parse().expect("--feature-dim");
            }
            "--epochs" => config.epochs = value("--epochs").parse().expect("--epochs"),
            "--queries" => config.queries = value("--queries").parse().expect("--queries"),
            "--callers" => config.callers = value("--callers").parse().expect("--callers"),
            "--max-batch" => config.max_batch = value("--max-batch").parse().expect("--max-batch"),
            "--max-wait-us" => {
                config.max_wait_us = value("--max-wait-us").parse().expect("--max-wait-us");
            }
            "--threads" => config.threads = value("--threads").parse().expect("--threads"),
            "--top-k" => config.top_k = value("--top-k").parse().expect("--top-k"),
            "--shards" => config.shards = value("--shards").parse().expect("--shards"),
            "--register" => config.register = value("--register").parse().expect("--register"),
            "--seed" => config.seed = value("--seed").parse().expect("--seed"),
            "--checkpoint" => config.checkpoint = value("--checkpoint").into(),
            "--wal-dir" => config.wal_dir = Some(value("--wal-dir").into()),
            "--recover" => config.recover = true,
            "--kill-after-register" => config.kill_after_register = true,
            "--net" => config.net = true,
            "--net-addr" => {
                config.net_addr = Some(value("--net-addr"));
                config.net = true;
            }
            "--net-qps" => {
                config.net_qps = value("--net-qps")
                    .split(',')
                    .map(|level| level.trim().parse().expect("--net-qps"))
                    .collect();
                assert!(
                    !config.net_qps.is_empty(),
                    "--net-qps needs at least one level"
                );
            }
            "--net-clients" => {
                config.net_clients = value("--net-clients").parse().expect("--net-clients");
            }
            "--net-requests" => {
                config.net_requests = value("--net-requests").parse().expect("--net-requests");
            }
            "--net-admission" => {
                config.net_admission = value("--net-admission").parse().expect("--net-admission");
            }
            "--calibrate" => config.calibrate = true,
            "--stream" => config.stream = true,
            "--quick" => {
                // Small CI smoke: train → save → load → serve → register →
                // re-serve in a few seconds.
                config.classes = 12;
                config.images = 6;
                config.feature_dim = 48;
                config.epochs = 2;
                config.queries = 256;
                config.callers = 2;
                config.register = 2;
                config.net_qps = vec![1_000, 4_000];
                config.net_clients = 4;
                config.net_requests = 160;
            }
            "--json" => config.json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: zsc_serve [--classes N] [--images N] [--feature-dim N] [--epochs N] \
                     [--queries N] [--callers N] [--max-batch N] [--max-wait-us N] [--threads N] \
                     [--top-k K] [--shards N] [--register N] [--seed N] [--checkpoint PATH] \
                     [--wal-dir PATH] [--recover] [--kill-after-register] \
                     [--net] [--net-addr HOST:PORT] [--net-qps A,B,..] [--net-clients N] \
                     [--net-requests N] [--net-admission N] [--calibrate] [--stream] [--quick] \
                     [--json]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(config.classes > 1 && config.images > 0 && config.queries > 0 && config.callers > 0);
    config
}

/// Per-path stats in the same shape as `serve_sim`'s output, with the shared
/// ceiling nearest-rank percentile helper.
#[derive(Debug, Clone)]
struct PathStats {
    queries: usize,
    elapsed_s: f64,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

impl PathStats {
    /// `latencies_us` holds one latency per query; `elapsed_s` is the
    /// wall-clock window the queries were answered in (callers run
    /// concurrently, so it is not the latency sum).
    fn new(mut latencies_us: Vec<f64>, elapsed_s: f64) -> Self {
        let queries = latencies_us.len();
        latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Self {
            queries,
            elapsed_s,
            qps: queries as f64 / elapsed_s.max(1e-12),
            p50_us: metrics::nearest_rank(&latencies_us, 0.50),
            p95_us: metrics::nearest_rank(&latencies_us, 0.95),
            p99_us: metrics::nearest_rank(&latencies_us, 0.99),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"queries\": {}, \"elapsed_s\": {:.6}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
            self.queries, self.elapsed_s, self.qps, self.p50_us, self.p95_us, self.p99_us
        )
    }
}

/// Drives one multi-caller traffic phase through the server and returns
/// `(stats, served top-1 per query index)`.
fn run_traffic(
    server: &QueryServer,
    queries: &[Vec<f32>],
    callers: usize,
) -> (PathStats, Vec<ScoredLabel>) {
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(queries.len()));
    let served: Mutex<Vec<(usize, ScoredLabel)>> = Mutex::new(Vec::with_capacity(queries.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (caller, chunk) in queries.chunks(queries.len().div_ceil(callers)).enumerate() {
            let latencies = &latencies;
            let served = &served;
            let base = caller * queries.len().div_ceil(callers);
            scope.spawn(move || {
                let mut index = 0usize;
                while index < chunk.len() {
                    // Mixed traffic: mostly single queries, every third
                    // submission a small batch of up to 4 rows.
                    let batch = if index % 3 == 2 {
                        (chunk.len() - index).min(4)
                    } else {
                        1
                    };
                    let rows = &chunk[index..index + batch];
                    let submit = Instant::now();
                    let results = server.query_batch(rows).expect("query served");
                    // Every query in a batched submission blocks from
                    // submission until the shared result returns, so each
                    // one experienced the full wall time.
                    let us = submit.elapsed().as_secs_f64() * 1e6;
                    let mut lats = latencies.lock().expect("latency mutex");
                    for _ in 0..batch {
                        lats.push(us);
                    }
                    let mut top = served.lock().expect("served mutex");
                    for (offset, mut result) in results.into_iter().enumerate() {
                        top.push((base + index + offset, result.remove(0)));
                    }
                    index += batch;
                }
            });
        }
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut served_top = served.into_inner().expect("served mutex");
    served_top.sort_by_key(|(index, _)| *index);
    assert_eq!(served_top.len(), queries.len());
    (
        PathStats::new(latencies.into_inner().expect("latency mutex"), elapsed_s),
        served_top.into_iter().map(|(_, top)| top).collect(),
    )
}

/// Scores every query solo against the reference model + memory and asserts
/// the served top-1s are bit-identical; returns the direct-path stats.
fn cross_check(
    phase: &str,
    reference_model: &ZscModel,
    reference_memory: &ShardedClassMemory,
    queries: &[Vec<f32>],
    served: &[ScoredLabel],
) -> PathStats {
    let mut direct_latencies = Vec::with_capacity(queries.len());
    let direct_start = Instant::now();
    for (q, (features, (label, sim))) in queries.iter().zip(served).enumerate() {
        let start = Instant::now();
        let embedding =
            reference_model.embed_images(&Matrix::from_rows(std::slice::from_ref(features)));
        let packed = engine::pack_float_signs(embedding.row(0));
        let (direct_label, direct_sim) =
            reference_memory.nearest(&packed).expect("non-empty memory");
        direct_latencies.push(start.elapsed().as_secs_f64() * 1e6);
        assert_eq!(label, direct_label, "{phase} query {q}: served wrong label");
        assert_eq!(
            sim.to_bits(),
            direct_sim.to_bits(),
            "{phase} query {q}: served similarity diverges"
        );
    }
    let direct_s = direct_start.elapsed().as_secs_f64();
    eprintln!("zsc_serve: {phase} top-1 results are bit-identical to direct in-process scoring");
    PathStats::new(direct_latencies, direct_s)
}

/// Where the kill/recover drill records its expected answers, inside the
/// WAL directory (next to `wal.log` and `base.json`).
fn probe_path(wal_dir: &std::path::Path) -> std::path::PathBuf {
    wal_dir.join("probe.json")
}

/// Snapshots the pre-kill ground truth: the serving schema, the snapshot
/// version, and a handful of queries with their bit-exact top-k answers.
fn write_probe_file(
    wal_dir: &std::path::Path,
    schema: &AttributeSchema,
    server: &QueryServer,
    queries: &[Vec<f32>],
    top_k: usize,
) {
    use std::io::Write;
    let snapshot = server.snapshot();
    let probes: Vec<Value> = queries
        .iter()
        .take(8)
        .map(|features| {
            let top: Vec<Value> = snapshot
                .solo_topk(features, top_k)
                .into_iter()
                .map(|(label, sim)| {
                    Value::Object(vec![
                        ("label".to_string(), label.to_value()),
                        ("sim_bits".to_string(), sim.to_bits().to_value()),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("features".to_string(), features.to_value()),
                ("top".to_string(), Value::Array(top)),
            ])
        })
        .collect();
    let document = Value::Object(vec![
        ("schema".to_string(), schema.to_value()),
        (
            "snapshot_version".to_string(),
            snapshot.version().to_value(),
        ),
        ("top_k".to_string(), top_k.to_value()),
        ("probes".to_string(), Value::Array(probes)),
    ]);
    let mut file = std::fs::File::create(probe_path(wal_dir)).expect("create probe file");
    let rendered = serde_json::to_string_pretty(&document).expect("render probe file");
    file.write_all(rendered.as_bytes())
        .expect("write probe file");
    // The probe file must survive the kill that follows immediately.
    file.sync_all().expect("sync probe file");
}

/// `--recover`: rebuild the server from the WAL directory alone and assert
/// every recorded probe answers bit-identically to the pre-kill server.
fn run_recovery(config: &Config) {
    let wal_dir = config
        .wal_dir
        .as_deref()
        .expect("--recover requires --wal-dir");
    let probe_doc = std::fs::read_to_string(probe_path(wal_dir)).expect("read probe file");
    let probe_doc = serde_json::parse_value(&probe_doc).expect("probe file parses");
    let schema: AttributeSchema =
        serde_json::from_value(probe_doc.get("schema").expect("probe schema"))
            .expect("probe schema decodes");
    let expected_version: u64 =
        serde_json::from_value(probe_doc.get("snapshot_version").expect("probe version"))
            .expect("probe version decodes");
    let top_k: usize = serde_json::from_value(probe_doc.get("top_k").expect("probe top_k"))
        .expect("probe top_k decodes");

    let recover_start = Instant::now();
    let (server, report) = QueryServer::recover(
        &schema,
        ServerConfig {
            max_batch: config.max_batch,
            max_wait_us: config.max_wait_us,
            threads: config.threads,
            top_k,
            shards: config.shards,
            routed: None,
            publish_every: 1,
        },
        DurabilityConfig::new(wal_dir),
    )
    .expect("recovery succeeds");
    let recover_s = recover_start.elapsed().as_secs_f64();
    assert_eq!(
        report.snapshot_version, expected_version,
        "recovery must resume at the pre-kill snapshot version"
    );

    let Some(Value::Array(probes)) = probe_doc.get("probes") else {
        panic!("probe file holds no probes");
    };
    for (p, probe) in probes.iter().enumerate() {
        let features: Vec<f32> =
            serde_json::from_value(probe.get("features").expect("probe features"))
                .expect("probe features decode");
        let Some(Value::Array(expected)) = probe.get("top") else {
            panic!("probe {p} records no answers");
        };
        // Both serving paths must reproduce the pre-kill bits: the live
        // micro-batched query path and the snapshot's solo scorer.
        let served = server.query(&features).expect("recovered server serves");
        let solo = server.snapshot().solo_topk(&features, top_k);
        assert_eq!(
            served.len(),
            expected.len(),
            "probe {p}: wrong answer count"
        );
        for (k, ((slabel, ssim), want)) in served.iter().zip(expected).enumerate() {
            let wlabel: String =
                serde_json::from_value(want.get("label").expect("label")).expect("label decodes");
            let wbits: u32 = serde_json::from_value(want.get("sim_bits").expect("sim_bits"))
                .expect("sim_bits decode");
            assert_eq!(slabel, &wlabel, "probe {p} rank {k}: label diverged");
            assert_eq!(
                ssim.to_bits(),
                wbits,
                "probe {p} rank {k}: similarity bits diverged"
            );
            assert_eq!(
                &solo[k].0, &wlabel,
                "probe {p} rank {k}: solo label diverged"
            );
            assert_eq!(solo[k].1.to_bits(), wbits, "probe {p} rank {k}: solo bits");
        }
    }
    eprintln!(
        "zsc_serve: recovered {} probes bit-identical to the pre-kill server",
        probes.len()
    );

    let json = format!(
        "{{\"recovered\": true, \"snapshot_version\": {}, \"replayed_records\": {}, \
         \"torn_tail\": {}, \"probes_checked\": {}, \"recover_s\": {recover_s:.6}}}",
        report.snapshot_version,
        report.replayed_records,
        report.torn_tail,
        probes.len()
    );
    if config.json {
        println!("{json}");
    } else {
        eprintln!("{json}");
    }
}

/// Reference answers for the sweep's bit-identity cross-check: per pool
/// row, the `(label, raw f32 bits)` pairs solo scoring produced.
type ExpectedBits = [Vec<(String, u32)>];

/// The shared open-loop qps sweep behind both `--net` modes. Each step
/// schedules sends at the target rate (open loop: a sender that falls
/// behind fires its backlog immediately rather than stretching the
/// schedule) and load-shed requests are dropped, not retried. When
/// `expected` carries the reference answers of a local model, every
/// answered query is cross-checked bit-identically; when it is `None`
/// (remote server, `--net-addr`) answers are checked for shape only and
/// the caller reports the cross-check as skipped.
fn net_sweep(
    addr: std::net::SocketAddr,
    pool: &[Vec<f32>],
    expected: Option<(u64, &ExpectedBits)>,
    config: &Config,
) -> Vec<String> {
    let clients = config.net_clients.max(1);
    let per_client = (config.net_requests / clients).max(1);
    let mut steps = Vec::new();
    for &target in &config.net_qps {
        let interval = Duration::from_secs_f64(clients as f64 / target.max(1) as f64);
        let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(clients * per_client));
        let step_start = Instant::now();
        let (answered, shed) = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for c in 0..clients {
                let latencies = &latencies;
                handles.push(scope.spawn(move || {
                    let mut client = NetClient::connect(addr, ClientConfig::default())
                        .expect("load generator connects");
                    let (mut answered, mut shed) = (0usize, 0usize);
                    let start = Instant::now();
                    for i in 0..per_client {
                        // Open-loop schedule: request i of this sender is
                        // due at i * interval; a late sender fires
                        // immediately instead of stretching the schedule.
                        let due = interval.mul_f64(i as f64);
                        let now = start.elapsed();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let pick = (c * per_client + i) % pool.len();
                        let submit = Instant::now();
                        match client.query(&pool[pick], None) {
                            Ok((version, served)) => {
                                if let Some((sweep_version, want_all)) = expected {
                                    assert_eq!(
                                        version, sweep_version,
                                        "no mutations during the sweep"
                                    );
                                    let want = &want_all[pick];
                                    assert_eq!(served.len(), want.len());
                                    for ((sl, ss), (el, eb)) in served.iter().zip(want) {
                                        assert_eq!(
                                            sl, el,
                                            "served label diverged from solo scoring"
                                        );
                                        assert_eq!(
                                            ss.to_bits(),
                                            *eb,
                                            "served similarity diverged from solo scoring"
                                        );
                                    }
                                } else {
                                    assert!(
                                        !served.is_empty(),
                                        "remote server answered an empty top-k"
                                    );
                                }
                                latencies
                                    .lock()
                                    .expect("latency mutex")
                                    .push(submit.elapsed().as_secs_f64() * 1e6);
                                answered += 1;
                            }
                            Err(e) if e.is_rejection(wire::code::OVERLOADED) => shed += 1,
                            Err(e) => panic!("load generator hit an unexpected failure: {e}"),
                        }
                    }
                    (answered, shed)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("sender thread"))
                .fold((0usize, 0usize), |(a, s), (da, ds)| (a + da, s + ds))
        });
        let elapsed_s = step_start.elapsed().as_secs_f64();
        let sent = clients * per_client;
        let lats = latencies.into_inner().expect("latency mutex");
        let stats = if lats.is_empty() {
            PathStats {
                queries: 0,
                elapsed_s,
                qps: 0.0,
                p50_us: 0.0,
                p95_us: 0.0,
                p99_us: 0.0,
            }
        } else {
            PathStats::new(lats, elapsed_s)
        };
        eprintln!(
            "zsc_serve: net step target {target} q/s \u{2192} sent {sent}, answered {answered}, \
             shed {shed}, goodput {:.0} q/s (p50 {:.0}\u{b5}s, p99 {:.0}\u{b5}s)",
            stats.qps, stats.p50_us, stats.p99_us
        );
        steps.push(format!(
            "{{\"target_qps\": {target}, \"sent\": {sent}, \"answered\": {answered}, \
             \"shed\": {shed}, \"goodput_qps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
             \"p99_us\": {:.1}, \"elapsed_s\": {:.6}}}",
            stats.qps, stats.p50_us, stats.p95_us, stats.p99_us, stats.elapsed_s
        ));
    }
    steps
}

/// `--net --net-addr host:port`: drive the same open-loop load generator
/// against an **already-running** front-end. No model is trained and no
/// local server is stood up: the query pool is synthesized in the
/// feature width the remote `welcome` frame declares. Without a local
/// model there is no reference scorer, so the bit-identity cross-check
/// is skipped and *reported* as skipped; the sweep still pins liveness,
/// typed load-shedding, and latency. The mutation drill does not run —
/// the remote model is not ours to mutate.
fn run_net_remote(config: &Config, addr_spec: &str) {
    use std::net::ToSocketAddrs;
    let addr = addr_spec
        .to_socket_addrs()
        .unwrap_or_else(|e| panic!("--net-addr {addr_spec}: {e}"))
        .next()
        .unwrap_or_else(|| panic!("--net-addr {addr_spec} resolved to no address"));
    let mut probe = NetClient::connect(addr, ClientConfig::default())
        .expect("remote front-end accepts the handshake");
    let welcome = probe.welcome();
    eprintln!(
        "zsc_serve: remote front-end at {addr}: protocol v{}, feature_dim {}, \
         {} classes at snapshot v{}",
        welcome.protocol, welcome.feature_dim, welcome.classes, welcome.snapshot_version
    );

    let pool = synthetic_pool(64, welcome.feature_dim as usize, config.seed);
    let steps = net_sweep(addr, &pool, None, config);
    eprintln!(
        "zsc_serve: bit-identity cross-check SKIPPED \u{2014} remote server at {addr_spec}, \
         no local model to score against"
    );

    let stats = probe
        .stats()
        .expect("remote front-end answers a stats request");
    let clients = config.net_clients.max(1);
    let per_client = (config.net_requests / clients).max(1);
    let json = format!(
        "{{\n  \"config\": {{\"net_addr\": \"{addr_spec}\", \"seed\": {}, \
         \"net_clients\": {clients}, \"net_requests_per_client\": {per_client}}},\n  \
         \"bit_identity\": \"skipped\",\n  \
         \"remote\": {{\"protocol\": {}, \"feature_dim\": {}, \"classes\": {}, \
         \"snapshot_version\": {}, \"queries\": {}, \"batches\": {}, \
         \"net_requests\": {}}},\n  \
         \"net_sweep\": [{}]\n}}",
        config.seed,
        welcome.protocol,
        welcome.feature_dim,
        stats.classes,
        stats.snapshot_version,
        stats.queries,
        stats.batches,
        stats.net_requests,
        steps.join(", "),
    );
    if config.json {
        println!("{json}");
    } else {
        eprintln!("{json}");
    }
}

/// Seeded synthetic feature rows for driving a remote server we know
/// only the feature width of: splitmix64 mapped into [0, 1).
fn synthetic_pool(rows: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 24) as f32
    };
    (0..rows)
        .map(|_| (0..dim).map(|_| next()).collect())
        .collect()
}

/// `--net`: stand the TCP front-end up over a freshly trained model and
/// drive it with an open-loop network load generator, sweeping target
/// qps levels.
///
/// Each sweep step schedules sends at the target rate (open loop: the
/// schedule does not slow down because responses are slow — a sender
/// that falls behind fires its backlog immediately). Load-shed requests
/// (typed `overloaded` rejections) are **dropped, not retried**, so the
/// report separates *offered* load from *goodput*. Every answered query
/// is cross-checked bit-identically against
/// [`serve::ModelSnapshot::solo_topk`]; a drained or corrupted answer
/// aborts the run. After the sweep a short mutation drill registers,
/// queries, and removes a class over the wire.
fn run_net_mode(config: &Config) {
    // --- train + serve ------------------------------------------------------
    let mut dataset_config = DatasetConfig::tiny(config.seed);
    dataset_config.num_classes = config.classes;
    dataset_config.images_per_class = config.images;
    dataset_config.feature_dim = config.feature_dim;
    let data = CubLikeDataset::generate(&dataset_config);
    let pipeline = Pipeline::new(
        ModelConfig::tiny(),
        TrainConfig::fast().with_epochs(config.epochs),
    );
    let train_start = Instant::now();
    let (outcome, model) = pipeline.run_returning_model(&data, SplitKind::Zs, config.seed);
    let train_s = train_start.elapsed().as_secs_f64();
    eprintln!("zsc_serve: trained in {train_s:.2}s, eval {}", outcome.zsc);

    let schema = data.schema();
    let split = data.split(SplitKind::Zs);
    let eval_classes = split.eval_classes();
    let eval_class_attr = data.class_attribute_matrix(eval_classes);
    let labels: Vec<String> = eval_classes
        .iter()
        .map(|c| format!("class{c:03}"))
        .collect();
    let server = Arc::new(
        QueryServer::start(
            model,
            labels,
            &eval_class_attr,
            ServerConfig {
                max_batch: config.max_batch,
                max_wait_us: config.max_wait_us,
                threads: config.threads,
                top_k: config.top_k,
                shards: config.shards,
                routed: None,
                publish_every: 1,
            },
        )
        .expect("server starts"),
    );
    let net = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&server),
        schema,
        NetConfig {
            admission_capacity: config.net_admission,
            max_connections: config.net_clients + 4,
            ..NetConfig::default()
        },
    )
    .expect("front-end binds");
    let addr = net.local_addr();
    eprintln!(
        "zsc_serve: front-end listening on {addr} (admission capacity {})",
        config.net_admission
    );

    // The reference answers: version 0 serves the whole sweep (no
    // mutations run until the drill afterwards), so the expected bits
    // per pool row are fixed up front.
    let (eval_x, _) = data.features_and_labels(eval_classes);
    let pool: Vec<Vec<f32>> = (0..eval_x.rows().min(64))
        .map(|q| eval_x.row(q).to_vec())
        .collect();
    let snapshot = server.snapshot();
    let sweep_version = snapshot.version();
    let expected: Vec<Vec<(String, u32)>> = pool
        .iter()
        .map(|q| {
            snapshot
                .solo_topk(q, config.top_k)
                .into_iter()
                .map(|(label, sim)| (label, sim.to_bits()))
                .collect()
        })
        .collect();

    // --- open-loop qps sweep ------------------------------------------------
    let clients = config.net_clients.max(1);
    let per_client = (config.net_requests / clients).max(1);
    let expected_bits: Vec<Vec<(String, u32)>> = expected;
    let steps = net_sweep(addr, &pool, Some((sweep_version, &expected_bits)), config);
    eprintln!("zsc_serve: all answered sweep queries were bit-identical to solo scoring");

    // --- mutation drill over the wire --------------------------------------
    let mut admin = NetClient::connect(addr, ClientConfig::default()).expect("admin connects");
    let drill_attributes = eval_class_attr.row(0).to_vec();
    let registered_version = admin
        .register_class("net_drill", &drill_attributes)
        .expect("register over the wire");
    let (served_version, served) = admin
        .query(&pool[0], None)
        .expect("query after registration");
    assert_eq!(served_version, registered_version);
    assert!(!served.is_empty());
    let removed_version = admin
        .remove_class("net_drill")
        .expect("remove over the wire");
    assert_eq!(removed_version, registered_version + 1);
    eprintln!(
        "zsc_serve: wire mutation drill registered and removed a class \
         (v{sweep_version} → v{removed_version})"
    );

    let front_end = net.stats();
    net.shutdown();
    let json = format!(
        "{{\n  \"config\": {{\"classes\": {}, \"images\": {}, \"feature_dim\": {}, \
         \"epochs\": {}, \"top_k\": {}, \"shards\": {}, \"seed\": {}, \"net_clients\": {clients}, \
         \"net_requests_per_client\": {per_client}, \"net_admission\": {}}},\n  \
         \"train\": {{\"elapsed_s\": {train_s:.3}, \"zs_top1\": {:.4}}},\n  \
         \"bit_identity\": \"checked\",\n  \
         \"net_sweep\": [{}],\n  \
         \"front_end\": {{\"connections\": {}, \"refused_connections\": {}, \"requests\": {}, \
         \"admitted\": {}, \"overloaded\": {}, \"quota_rejections\": {}, \
         \"draining_rejections\": {}}}\n}}",
        config.classes,
        config.images,
        config.feature_dim,
        config.epochs,
        config.top_k,
        config.shards,
        config.seed,
        config.net_admission,
        outcome.zsc.top1,
        steps.join(", "),
        front_end.connections,
        front_end.refused_connections,
        front_end.requests,
        front_end.admitted,
        front_end.overloaded,
        front_end.quota_rejections,
        front_end.draining_rejections,
    );
    if config.json {
        println!("{json}");
    } else {
        eprintln!("{json}");
    }
}

/// Renders an `Option<f32>` metric as a JSON number or `null`.
fn json_opt(value: Option<f32>) -> String {
    value.map_or_else(|| "null".to_string(), |v| format!("{v:.6}"))
}

/// `--calibrate`: generalized zero-shot + open-set drill over the
/// attribute-level [`GzslWorkload`] generator.
///
/// The drill model runs without the FC projection (γ = identity), so
/// query rows are the *attribute-encoder embeddings* of each query's
/// attribute vector — both sides of the cosine live in the same
/// hypervector space and the whole run is a pure function of the seed.
/// Steps: GZSL H-metric evaluation over the seen/unseen union, threshold
/// fitting on the served known-query similarities, one `set_threshold`
/// snapshot swap on the live server, and a mixed known + distractor
/// re-serve whose verdicts are cross-checked against solo recomputation.
fn run_calibrate(config: &Config) {
    let schema = AttributeSchema::cub200();
    let classes = config.classes.max(4);
    let workload = GzslWorkload::generate(&GzslWorkloadConfig {
        classes,
        unseen: config.register.clamp(1, classes - 1),
        attribute_dim: schema.num_attributes(),
        queries: config.queries,
        distractors: (config.queries / 8).max(16),
        // Heavier jitter than the generator default, so the H metric and
        // the rejection trade-off are exercised away from the trivial
        // all-correct / all-separable corner.
        noise: 0.35,
        seed: config.seed,
    });
    let model = ZscModel::new(
        &ModelConfig::tiny()
            .with_projection(false)
            .with_seed(config.seed),
        &schema,
        config.feature_dim,
    );
    let class_attr = Matrix::from_rows(&workload.class_attributes);
    let query_embeddings = model
        .attribute_encoder()
        .infer_classes(&Matrix::from_rows(&workload.query_attributes));
    let known_indices: Vec<usize> = (0..workload.query_class.len())
        .filter(|&q| workload.query_class[q].is_some())
        .collect();
    let known_targets: Vec<usize> = known_indices
        .iter()
        .map(|&q| workload.query_class[q].expect("known query"))
        .collect();
    let distractors = workload.query_class.len() - known_indices.len();
    eprintln!(
        "zsc_serve: calibrate drill over {classes} classes ({} unseen), {} known queries, \
         {distractors} distractors",
        workload.unseen_classes().len(),
        known_indices.len()
    );

    // --- GZSL H metric over the seen/unseen union ---------------------------
    let known_features = query_embeddings.select_rows(&known_indices);
    let gzsl = evaluate_gzsl(
        &model,
        &known_features,
        &known_targets,
        &class_attr,
        &workload.unseen,
    );
    eprintln!("zsc_serve: gzsl {gzsl}");

    // --- serve, calibrate, install the threshold live -----------------------
    let server = QueryServer::start(
        model,
        workload.labels.clone(),
        &class_attr,
        ServerConfig {
            max_batch: config.max_batch,
            max_wait_us: config.max_wait_us,
            threads: config.threads,
            top_k: config.top_k,
            shards: config.shards,
            routed: None,
            publish_every: 1,
        },
    )
    .expect("server starts");
    let rows: Vec<Vec<f32>> = (0..query_embeddings.rows())
        .map(|q| query_embeddings.row(q).to_vec())
        .collect();
    let mut known_sims = Vec::with_capacity(known_indices.len());
    for &q in &known_indices {
        let (_, top, verdict) = server.query_with_verdict(&rows[q]).expect("query served");
        assert_eq!(verdict, None, "no verdicts before calibration");
        known_sims.push(top.first().expect("non-empty class set").1);
    }
    let target_false_reject = 0.1f32;
    let calibration = SimilarityCalibrator::new(target_false_reject).fit(&known_sims);
    let calibrated = server
        .set_threshold(calibration.threshold)
        .expect("threshold installs");
    eprintln!(
        "zsc_serve: fitted threshold {} (bits {:#010x}) on {} known sims, installed in \
         snapshot v{}",
        calibration.threshold,
        calibration.threshold.to_bits(),
        known_sims.len(),
        calibrated.version()
    );

    // --- mixed re-serve: every verdict cross-checked against solo scoring ---
    let snapshot = server.snapshot();
    let mut sims = Vec::with_capacity(rows.len());
    let mut known_flags = Vec::with_capacity(rows.len());
    let (mut accepted_known, mut rejected_known) = (0usize, 0usize);
    let (mut accepted_distractor, mut rejected_distractor) = (0usize, 0usize);
    for (q, row) in rows.iter().enumerate() {
        let (version, top, verdict) = server.query_with_verdict(row).expect("query served");
        assert_eq!(version, snapshot.version(), "no mutations during the drill");
        let solo = snapshot.solo_topk(row, config.top_k);
        for ((sl, ss), (dl, ds)) in top.iter().zip(&solo) {
            assert_eq!(sl, dl, "served label diverged from solo scoring");
            assert_eq!(
                ss.to_bits(),
                ds.to_bits(),
                "served similarity diverged from solo scoring"
            );
        }
        let verdict = verdict.expect("threshold is installed");
        assert_eq!(
            Some(verdict),
            snapshot.verdict(&solo),
            "served verdict diverged from solo recomputation"
        );
        let is_known = workload.query_class[q].is_some();
        sims.push(top[0].1);
        known_flags.push(is_known);
        match (is_known, verdict) {
            (true, serve::Verdict::Known) => accepted_known += 1,
            (true, serve::Verdict::Unknown) => rejected_known += 1,
            (false, serve::Verdict::Known) => accepted_distractor += 1,
            (false, serve::Verdict::Unknown) => rejected_distractor += 1,
        }
    }
    let rejection = metrics::rejection_report(&sims, &known_flags, calibration.threshold);
    let auroc = metrics::auroc(&sims, &known_flags);
    assert_eq!(
        rejection.rejected,
        rejected_known + rejected_distractor,
        "the metrics-layer reject rule and the served verdicts must agree"
    );
    let false_reject_rate = rejection.false_reject_rate.unwrap_or(0.0);
    assert!(
        false_reject_rate <= target_false_reject + 1e-6,
        "calibration overshoots its target: {false_reject_rate} > {target_false_reject}"
    );
    eprintln!(
        "zsc_serve: verdicts known {accepted_known}+{rejected_known} / distractor \
         {accepted_distractor}+{rejected_distractor} (accepted+rejected), false-reject \
         {false_reject_rate:.4} ≤ target {target_false_reject}, auroc {}",
        json_opt(auroc)
    );

    let json = format!(
        "{{\n  \"config\": {{\"classes\": {classes}, \"unseen\": {}, \"attribute_dim\": {}, \
         \"embedding_dim\": {}, \"queries\": {}, \"distractors\": {distractors}, \
         \"top_k\": {}, \"seed\": {}}},\n  \
         \"gzsl\": {{\"seen\": {}, \"unseen\": {}, \"harmonic\": {:.6}, \
         \"num_seen_classes\": {}, \"num_unseen_classes\": {}, \"num_samples\": {}}},\n  \
         \"calibration\": {{\"target_false_reject\": {target_false_reject}, \
         \"threshold\": {}, \"threshold_bits\": {}, \"fitted_on\": {}}},\n  \
         \"serve\": {{\"snapshot_version\": {}, \"accepted_known\": {accepted_known}, \
         \"rejected_known\": {rejected_known}, \"accepted_distractor\": {accepted_distractor}, \
         \"rejected_distractor\": {rejected_distractor}, \"false_reject_rate\": {:.6}, \
         \"rejection_precision\": {}, \"rejection_recall\": {}, \"auroc\": {}}}\n}}",
        workload.unseen_classes().len(),
        schema.num_attributes(),
        config.feature_dim,
        known_indices.len(),
        config.top_k,
        config.seed,
        json_opt(gzsl.seen),
        json_opt(gzsl.unseen),
        gzsl.harmonic,
        gzsl.num_seen_classes,
        gzsl.num_unseen_classes,
        gzsl.num_samples,
        calibration.threshold,
        calibration.threshold.to_bits(),
        known_sims.len(),
        snapshot.version(),
        false_reject_rate,
        json_opt(rejection.precision),
        json_opt(rejection.recall),
        json_opt(auroc),
    );
    if config.json {
        println!("{json}");
    } else {
        eprintln!("{json}");
    }
}

/// `--stream`: the streaming continual-learning drill. Trains a tiny
/// model, serves it durably behind the TCP front-end, and streams a
/// seeded concept-drift workload ([`StreamWorkload`]) through the wire
/// `observe` verb in **lockstep** with a non-durable in-process twin
/// folding the exact same examples — every wire-reported version must
/// match the twin's, and after the explicit `flush` the two class
/// memories must be bit-identical. The server is then killed (dropped), a
/// torn partial record is appended to the WAL tail, and
/// [`QueryServer::recover`] must rebuild the exact serving state —
/// counters, batching position, and served bits — after which the
/// resumed stream and the twin still publish identical snapshots.
fn run_stream(config: &Config) {
    const PUBLISH_EVERY: u32 = 4;
    eprintln!(
        "zsc_serve: streaming drill — classes={} images={} feature_dim={} epochs={} \
         publish_every={PUBLISH_EVERY}",
        config.classes, config.images, config.feature_dim, config.epochs
    );

    // --- train ------------------------------------------------------------
    let mut dataset_config = DatasetConfig::tiny(config.seed);
    dataset_config.num_classes = config.classes;
    dataset_config.images_per_class = config.images;
    dataset_config.feature_dim = config.feature_dim;
    let data = CubLikeDataset::generate(&dataset_config);
    let pipeline = Pipeline::new(
        ModelConfig::tiny(),
        TrainConfig::fast().with_epochs(config.epochs),
    );
    let train_start = Instant::now();
    let (outcome, model) = pipeline.run_returning_model(&data, SplitKind::Zs, config.seed);
    let train_s = train_start.elapsed().as_secs_f64();
    eprintln!("zsc_serve: trained in {train_s:.2}s, eval {}", outcome.zsc);

    let schema = data.schema();
    let split = data.split(SplitKind::Zs);
    let eval_classes = split.eval_classes();
    let class_attr = data.class_attribute_matrix(eval_classes);
    let labels: Vec<String> = eval_classes
        .iter()
        .map(|c| format!("class{c:03}"))
        .collect();
    let frozen = model.freeze();

    let server_config = ServerConfig {
        max_batch: config.max_batch,
        max_wait_us: config.max_wait_us,
        threads: config.threads,
        top_k: config.top_k,
        shards: config.shards,
        routed: None,
        publish_every: PUBLISH_EVERY,
    };
    let wal_dir = config
        .wal_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("zsc-stream-{}", std::process::id())));
    std::fs::remove_dir_all(&wal_dir).ok();
    let server = Arc::new(
        QueryServer::start_durable(
            frozen.clone(),
            labels.clone(),
            &class_attr,
            schema,
            server_config,
            DurabilityConfig {
                dir: wal_dir.clone(),
                sync: serve::SyncPolicy::Always,
                // Low enough that the stream below crosses a compaction
                // mid-batch: the counters then ride the checkpoint delta,
                // not WAL replay.
                compact_every: 32,
            },
        )
        .expect("durable server starts"),
    );
    // The uninterrupted in-process twin: same frozen model, same classes,
    // no WAL, no network — the reference the streamed server must match
    // bit-for-bit at every publication.
    let twin = QueryServer::start(frozen, labels.clone(), &class_attr, server_config)
        .expect("twin starts");
    let net = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&server),
        schema,
        NetConfig::default(),
    )
    .expect("front-end binds");
    let mut client =
        NetClient::connect(net.local_addr(), ClientConfig::default()).expect("client connects");

    // --- stream over the socket, lockstep with the twin ---------------------
    let workload = StreamWorkload::generate(&StreamWorkloadConfig {
        classes: labels.len(),
        feature_dim: config.feature_dim,
        steps: 11,
        examples_per_step: 7,
        drift: 0.12,
        noise: 0.05,
        seed: config.seed,
    });
    let observe_lockstep = |client: &mut NetClient, example: &dataset::StreamExample| -> u64 {
        let label = &labels[example.class];
        let version = client
            .observe(label, &example.features)
            .expect("observe over the wire");
        twin.observe(label, &example.features)
            .expect("twin observe");
        assert_eq!(
            version,
            twin.snapshot().version(),
            "wire and twin versions diverged at a publication boundary"
        );
        version
    };
    let phase_one = 70usize;
    for example in &workload.examples[..phase_one] {
        observe_lockstep(&mut client, example);
    }
    // Explicit boundary: the partial batch (70 % 4 = 2 observes) publishes.
    let flushed_version = client.flush().expect("flush over the wire");
    twin.flush().expect("twin flush");
    assert_eq!(flushed_version, twin.snapshot().version());
    assert_eq!(
        server.snapshot().memory(),
        twin.snapshot().memory(),
        "streamed memory diverged from the in-process twin after flush"
    );
    eprintln!(
        "zsc_serve: {phase_one} observes + flush published v{flushed_version}, \
         memory bit-identical to the twin"
    );

    // Served answers through the socket are bit-identical to solo scoring
    // on the twin's snapshot (same memory, same model).
    let twin_snapshot = twin.snapshot();
    for example in workload.examples.iter().step_by(17) {
        let (version, served) = client.query(&example.features, None).expect("query served");
        assert_eq!(version, flushed_version);
        let expected = twin_snapshot.solo_topk(&example.features, config.top_k);
        assert_eq!(served.len(), expected.len());
        for ((sl, ss), (el, es)) in served.iter().zip(&expected) {
            assert_eq!(sl, el, "served label diverged from solo scoring");
            assert_eq!(ss.to_bits(), es.to_bits(), "served bits diverged");
        }
    }

    // A few more observes leave the server mid-batch, then the kill.
    for example in &workload.examples[phase_one..] {
        observe_lockstep(&mut client, example);
    }
    let wire_stats = client.stats().expect("stats over the wire");
    assert_eq!(wire_stats.observes, workload.examples.len() as u64);
    assert!(wire_stats.wal_bytes > 0, "durable server reports WAL bytes");
    let expected = server.snapshot();
    let expected_stream = server.stream_stats();
    eprintln!(
        "zsc_serve: killed mid-batch at v{} ({} pending, {} since publish, wal {} bytes, \
         {} records since compaction, {} drift alarms)",
        expected.version(),
        expected_stream.pending_classes,
        expected_stream.since_publish,
        wire_stats.wal_bytes,
        wire_stats.records_since_compaction,
        wire_stats.drift_alarms,
    );
    drop(client);
    net.shutdown();
    drop(net);
    drop(server); // the kill: only the WAL directory survives

    // --- torn tail + recovery ----------------------------------------------
    {
        use std::io::Write;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(serve::wal::wal_path(&wal_dir))
            .expect("open log");
        log.write_all(&[0x13, 0x37, 0xAB])
            .expect("append torn tail");
    }
    let (recovered, report) = QueryServer::recover(
        schema,
        server_config,
        DurabilityConfig::new(wal_dir.clone()),
    )
    .expect("recovers");
    assert!(report.torn_tail, "the torn partial record must be detected");
    assert_eq!(report.snapshot_version, expected.version());
    assert_eq!(
        recovered.snapshot().memory(),
        expected.memory(),
        "recovered memory diverged from the pre-kill snapshot"
    );
    let recovered_stream = recovered.stream_stats();
    assert_eq!(
        recovered_stream.since_publish,
        expected_stream.since_publish
    );
    assert_eq!(
        recovered_stream.pending_classes,
        expected_stream.pending_classes
    );
    eprintln!(
        "zsc_serve: recovered past the torn tail to v{} ({} records replayed), \
         batching position intact",
        report.snapshot_version, report.replayed_records
    );

    // --- resume the stream on the recovered server ---------------------------
    // One more observe lands the interrupted batch's boundary on both
    // servers; the published memories must still agree bit-for-bit.
    let resume = &workload.examples[0];
    let resumed_published = recovered
        .observe(&labels[resume.class], &resume.features)
        .expect("recovered server observes")
        .expect("boundary publishes");
    twin.observe(&labels[resume.class], &resume.features)
        .expect("twin observes");
    assert_eq!(resumed_published.version(), twin.snapshot().version());
    assert_eq!(
        resumed_published.memory(),
        twin.snapshot().memory(),
        "post-recovery publication diverged from the uninterrupted twin"
    );
    let durability = recovered
        .durability_stats()
        .expect("recovered server is durable");
    let drift = recovered.drift_report();

    let json = format!(
        "{{\n  \"config\": {{\"classes\": {}, \"images\": {}, \"feature_dim\": {}, \
         \"epochs\": {}, \"seed\": {}, \"publish_every\": {PUBLISH_EVERY}}},\n  \
         \"train\": {{\"elapsed_s\": {:.3}, \"zs_top1\": {:.4}}},\n  \
         \"stream\": {{\"observes\": {}, \"streamed_classes\": {}, \"publishes\": {}, \
         \"drift_alarms\": {}, \"final_version\": {}}},\n  \
         \"durability\": {{\"wal_bytes\": {}, \"records_since_compaction\": {}}},\n  \
         \"recovery\": {{\"torn_tail\": {}, \"replayed_records\": {}, \
         \"snapshot_version\": {}}},\n  \
         \"checks\": {{\"lockstep_versions\": true, \"bit_identical_to_twin\": true, \
         \"resumed_after_recovery\": true}}\n}}",
        config.classes,
        config.images,
        config.feature_dim,
        config.epochs,
        config.seed,
        train_s,
        outcome.zsc.top1,
        workload.examples.len() + 1,
        drift.classes.len(),
        drift.publishes,
        drift.alarms,
        resumed_published.version(),
        durability.wal_bytes,
        durability.records_since_compaction,
        report.torn_tail,
        report.replayed_records,
        report.snapshot_version,
    );
    if config.json {
        println!("{json}");
    } else {
        eprintln!("{json}");
    }
}

fn main() {
    let config = parse_args();
    if config.recover {
        run_recovery(&config);
        return;
    }
    if config.calibrate {
        run_calibrate(&config);
        return;
    }
    if config.stream {
        run_stream(&config);
        return;
    }
    if config.net {
        match &config.net_addr {
            Some(addr) => run_net_remote(&config, addr),
            None => run_net_mode(&config),
        }
        return;
    }
    eprintln!(
        "zsc_serve: classes={} images={} feature_dim={} epochs={} queries={} callers={} \
         shards={} register={}",
        config.classes,
        config.images,
        config.feature_dim,
        config.epochs,
        config.queries,
        config.callers,
        config.shards,
        config.register
    );

    // --- train ------------------------------------------------------------
    let mut dataset_config = DatasetConfig::tiny(config.seed);
    dataset_config.num_classes = config.classes;
    dataset_config.images_per_class = config.images;
    dataset_config.feature_dim = config.feature_dim;
    let data = CubLikeDataset::generate(&dataset_config);
    let pipeline = Pipeline::new(
        ModelConfig::tiny(),
        TrainConfig::fast().with_epochs(config.epochs),
    );
    let train_start = Instant::now();
    let (outcome, model) = pipeline.run_returning_model(&data, SplitKind::Zs, config.seed);
    let train_s = train_start.elapsed().as_secs_f64();
    eprintln!("zsc_serve: trained in {train_s:.2}s, eval {}", outcome.zsc);

    // --- save → load ------------------------------------------------------
    let schema = data.schema();
    Checkpoint::capture(&model, schema)
        .save_json(&config.checkpoint)
        .expect("write checkpoint");
    let checkpoint_bytes = std::fs::metadata(&config.checkpoint)
        .map(|m| m.len())
        .unwrap_or(0);
    drop(model); // from here on, only the reloaded model exists
    let loaded = Checkpoint::load_json(&config.checkpoint).expect("reload checkpoint");
    eprintln!(
        "zsc_serve: checkpoint {} ({checkpoint_bytes} bytes) reloaded, format v{}",
        config.checkpoint.display(),
        loaded.format_version
    );

    // --- serve over the initial class set ----------------------------------
    // The last `--register` evaluation classes are held out of the initial
    // serving set and registered through the live server later.
    let split = data.split(SplitKind::Zs);
    let eval_classes = split.eval_classes();
    let eval_class_attr = data.class_attribute_matrix(eval_classes);
    let labels: Vec<String> = eval_classes
        .iter()
        .map(|c| format!("class{c:03}"))
        .collect();
    let register = config.register.min(labels.len().saturating_sub(1));
    let initial = labels.len() - register;
    let initial_labels: Vec<String> = labels[..initial].to_vec();
    let initial_attr = eval_class_attr.select_rows(&(0..initial).collect::<Vec<_>>());

    let reference_model = loaded
        .clone()
        .into_model(schema)
        .expect("checkpoint matches the schema");
    let reference_initial =
        reference_model.sharded_class_memory(initial_labels.clone(), &initial_attr, config.shards);
    let reference_full =
        reference_model.sharded_class_memory(labels.clone(), &eval_class_attr, config.shards);
    let server_config = ServerConfig {
        max_batch: config.max_batch,
        max_wait_us: config.max_wait_us,
        threads: config.threads,
        top_k: config.top_k,
        shards: config.shards,
        routed: None,
        publish_every: 1,
    };
    let server = match &config.wal_dir {
        // Durable serving: class mutations are write-ahead-logged under
        // `--wal-dir` before they are published (see `serve::wal`).
        Some(dir) => {
            let frozen = loaded
                .into_frozen(schema)
                .expect("checkpoint matches the schema");
            QueryServer::start_durable(
                frozen,
                initial_labels,
                &initial_attr,
                schema,
                server_config,
                DurabilityConfig::new(dir.clone()),
            )
            .expect("durable server starts from checkpoint")
        }
        None => QueryServer::from_checkpoint(
            loaded,
            schema,
            initial_labels,
            &initial_attr,
            server_config,
        )
        .expect("server starts from checkpoint"),
    };

    // Traffic: evaluation-side features, cycled up to the requested query
    // count and spread over caller threads.
    let (eval_x, _) = data.features_and_labels(eval_classes);
    let queries: Vec<Vec<f32>> = (0..config.queries)
        .map(|q| eval_x.row(q % eval_x.rows()).to_vec())
        .collect();
    let (serve_stats, served_initial) = run_traffic(&server, &queries, config.callers);
    let direct_stats = cross_check(
        "pre-registration",
        &reference_model,
        &reference_initial,
        &queries,
        &served_initial,
    );

    // --- register the held-out classes through the live server -------------
    let register_start = Instant::now();
    for (r, label) in labels.iter().enumerate().skip(initial) {
        let snapshot = server
            .register_class(label.clone(), eval_class_attr.row(r))
            .expect("class registers");
        eprintln!(
            "zsc_serve: registered {label} in snapshot v{} ({} classes live)",
            snapshot.version(),
            snapshot.memory().len()
        );
    }
    let register_s = register_start.elapsed().as_secs_f64();
    let final_snapshot = server.snapshot();
    assert_eq!(final_snapshot.memory().len(), labels.len());
    for label in &labels {
        assert!(
            final_snapshot.memory().contains(label),
            "{label} must be servable after registration"
        );
    }

    // --- optional kill: record ground truth, then die without cleanup ------
    if config.kill_after_register {
        let dir = config
            .wal_dir
            .as_deref()
            .expect("--kill-after-register requires --wal-dir");
        write_probe_file(dir, schema, &server, &queries, config.top_k);
        eprintln!(
            "zsc_serve: probe file written under {}; exiting hard (no destructors) to \
             simulate a crash — run again with --recover",
            dir.display()
        );
        // No Drop runs past this point: the WAL alone must carry the state.
        std::process::exit(0);
    }

    // --- re-serve: the registered classes are live, no restart -------------
    let (post_stats, served_post) = run_traffic(&server, &queries, config.callers);
    let _ = cross_check(
        "post-registration",
        &reference_model,
        &reference_full,
        &queries,
        &served_post,
    );
    let newly_served = served_post
        .iter()
        .filter(|(label, _)| labels[initial..].contains(label))
        .count();
    eprintln!(
        "zsc_serve: {newly_served}/{} post-registration top-1s resolved to a live-registered class",
        served_post.len()
    );

    let batching = server.stats();
    // Durable runs report the live WAL footprint; `null` otherwise, so the
    // document shape is stable across modes.
    let durability_json = match server.durability_stats() {
        Some(d) => format!(
            "{{\"wal_bytes\": {}, \"records_since_compaction\": {}, \"next_record_seq\": {}}}",
            d.wal_bytes, d.records_since_compaction, d.next_record_seq
        ),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"config\": {{\"classes\": {}, \"images\": {}, \"feature_dim\": {}, \
         \"epochs\": {}, \"queries\": {}, \"callers\": {}, \"max_batch\": {}, \
         \"max_wait_us\": {}, \"threads\": {}, \"top_k\": {}, \"shards\": {}, \
         \"register\": {register}, \"seed\": {}}},\n  \
         \"train\": {{\"elapsed_s\": {:.3}, \"zs_top1\": {:.4}}},\n  \
         \"checkpoint\": {{\"path\": \"{}\", \"bytes\": {}}},\n  \
         \"serve\": {},\n  \
         \"register_phase\": {{\"classes\": {register}, \"elapsed_s\": {:.6}, \
         \"final_version\": {}, \"top1_hits_on_registered\": {newly_served}}},\n  \
         \"serve_post_register\": {},\n  \"direct\": {},\n  \
         \"batching\": {{\"batches\": {}, \"mean_batch\": {:.2}, \"max_batch_observed\": {}, \
         \"swaps\": {}}},\n  \"durability\": {durability_json}\n}}",
        config.classes,
        config.images,
        config.feature_dim,
        config.epochs,
        config.queries,
        config.callers,
        config.max_batch,
        config.max_wait_us,
        config.threads,
        config.top_k,
        config.shards,
        config.seed,
        train_s,
        outcome.zsc.top1,
        config.checkpoint.display(),
        checkpoint_bytes,
        serve_stats.to_json(),
        register_s,
        final_snapshot.version(),
        post_stats.to_json(),
        direct_stats.to_json(),
        batching.batches,
        batching.mean_batch(),
        batching.max_batch_observed,
        batching.swaps,
    );
    if config.json {
        println!("{json}");
    } else {
        eprintln!("{json}");
        eprintln!(
            "serve {:.0} q/s (p99 {:.0}µs, mean batch {:.1}) | post-register {:.0} q/s | \
             direct {:.0} q/s | {} swaps",
            serve_stats.qps,
            serve_stats.p99_us,
            batching.mean_batch(),
            post_stats.qps,
            direct_stats.qps,
            batching.swaps
        );
    }
}
