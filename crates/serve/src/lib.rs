#![doc = include_str!("../README.md")]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod net;
pub mod server;
pub mod wal;

pub use net::{NetClient, NetConfig, NetError, NetServer, NetStats};
pub use server::{
    DurabilityConfig, DurabilityStats, ModelSnapshot, QueryServer, RecoveryReport, ScoredLabel,
    ServeError, ServedResult, ServerConfig, ServerStats, StreamStats, Verdict,
};
pub use wal::{SyncPolicy, WalError};

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::AttributeSchema;
    use hdc_zsc::{Checkpoint, ModelConfig, ZscModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Matrix;

    const FEATURE_DIM: usize = 24;

    fn fixture() -> (ZscModel, Vec<String>, Matrix, AttributeSchema) {
        let schema = AttributeSchema::cub200();
        let model = ZscModel::new(&ModelConfig::tiny().with_seed(11), &schema, FEATURE_DIM);
        let mut rng = StdRng::seed_from_u64(5);
        let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
        let labels: Vec<String> = (0..9).map(|c| format!("class{c}")).collect();
        (model, labels, class_attributes, schema)
    }

    /// The serving reference: what one query scored alone through the same
    /// model + sharded memory must return — i.e.
    /// [`ModelSnapshot::solo_topk`] computed from first principles.
    fn reference_topk(
        model: &ZscModel,
        memory: &engine::ShardedClassMemory,
        features: &[f32],
        k: usize,
    ) -> Vec<ScoredLabel> {
        let embedding = model.embed_images(&Matrix::from_rows(&[features.to_vec()]));
        let packed = engine::pack_float_signs(embedding.row(0));
        memory
            .top_k(&packed, k)
            .into_iter()
            .map(|(label, sim)| (label.to_string(), sim))
            .collect()
    }

    #[test]
    fn served_results_are_bit_identical_to_direct_scoring() {
        let (model, labels, class_attributes, _) = fixture();
        let reference_model = model.clone();
        let mut rng = StdRng::seed_from_u64(6);
        let queries: Vec<Vec<f32>> = (0..40)
            .map(|_| {
                Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                    .row(0)
                    .to_vec()
            })
            .collect();
        for (max_batch, threads, shards) in [(1usize, 1usize, 1usize), (8, 2, 3), (64, 3, 7)] {
            let memory =
                reference_model.sharded_class_memory(labels.clone(), &class_attributes, shards);
            let server = QueryServer::start(
                model.clone(),
                labels.clone(),
                &class_attributes,
                ServerConfig {
                    max_batch,
                    max_wait_us: 100,
                    threads,
                    top_k: 4,
                    shards,
                    routed: None,
                    publish_every: 1,
                },
            )
            .expect("server starts");
            for q in &queries {
                let (version, served) = server.query_traced(q).expect("query served");
                assert_eq!(version, 0, "no swaps were published");
                let expected = reference_topk(&reference_model, &memory, q, 4);
                assert_eq!(served.len(), expected.len());
                for ((sl, ss), (el, es)) in served.iter().zip(&expected) {
                    assert_eq!(sl, el, "max_batch={max_batch} threads={threads}");
                    assert_eq!(ss.to_bits(), es.to_bits());
                }
                // The snapshot's own solo scorer agrees too.
                assert_eq!(server.snapshot().solo_topk(q, 4), expected);
            }
        }
    }

    #[test]
    fn concurrent_callers_coalesce_into_batches() {
        let (model, labels, class_attributes, _) = fixture();
        let reference_model = model.clone();
        let memory = reference_model.sharded_class_memory(labels.clone(), &class_attributes, 4);
        let server = QueryServer::start(
            model,
            labels,
            &class_attributes,
            ServerConfig {
                max_batch: 16,
                max_wait_us: 2_000,
                threads: 2,
                top_k: 3,
                shards: 4,
                routed: None,
                publish_every: 1,
            },
        )
        .expect("server starts");
        let mut rng = StdRng::seed_from_u64(7);
        let queries: Vec<Vec<f32>> = (0..48)
            .map(|_| {
                Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                    .row(0)
                    .to_vec()
            })
            .collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in queries.chunks(6) {
                let server = &server;
                handles.push(scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|q| server.query(q).expect("query served"))
                        .collect::<Vec<_>>()
                }));
            }
            for (handle, chunk) in handles.into_iter().zip(queries.chunks(6)) {
                for (served, q) in handle.join().expect("caller thread").into_iter().zip(chunk) {
                    let expected = reference_topk(&reference_model, &memory, q, 3);
                    assert_eq!(served, expected);
                }
            }
        });
        let stats = server.stats();
        assert_eq!(stats.queries, 48);
        assert!(stats.batches >= 1);
        assert!(stats.max_batch_observed <= 16);
        assert!(stats.mean_batch() >= 1.0);
        assert_eq!(stats.swaps, 0);
    }

    #[test]
    fn query_batch_preserves_submission_order() {
        let (model, labels, class_attributes, _) = fixture();
        let reference_model = model.clone();
        let memory = reference_model.sharded_class_memory(
            labels.clone(),
            &class_attributes,
            ServerConfig::default().shards,
        );
        let server = QueryServer::start(model, labels, &class_attributes, ServerConfig::default())
            .expect("server starts");
        let mut rng = StdRng::seed_from_u64(8);
        let rows: Vec<Vec<f32>> = (0..10)
            .map(|_| {
                Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                    .row(0)
                    .to_vec()
            })
            .collect();
        let served = server.query_batch(&rows).expect("batch served");
        assert_eq!(served.len(), rows.len());
        for (result, row) in served.iter().zip(&rows) {
            assert_eq!(result, &reference_topk(&reference_model, &memory, row, 5));
        }
    }

    /// The headline hot-swap property: a class registered through the live
    /// server is servable without a restart, its own signature resolves to
    /// it, and removal makes it unservable again — with versions advancing
    /// and older snapshots untouched.
    #[test]
    fn register_and_remove_classes_while_serving() {
        let (model, labels, class_attributes, _) = fixture();
        let mut rng = StdRng::seed_from_u64(12);
        let new_attr: Vec<f32> = Matrix::random_uniform(1, 312, 0.5, &mut rng)
            .map(f32::abs)
            .row(0)
            .to_vec();
        let server = QueryServer::start(
            model.clone(),
            labels.clone(),
            &class_attributes,
            ServerConfig {
                top_k: 1,
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let before = server.snapshot();
        assert_eq!(before.version(), 0);
        assert!(!before.memory().contains("hotdog"));

        let after = server
            .register_class("hotdog", &new_attr)
            .expect("registers");
        assert_eq!(after.version(), 1);
        assert!(after.memory().contains("hotdog"));
        // The old snapshot is immutable — readers holding it are unaffected.
        assert!(!before.memory().contains("hotdog"));
        assert_eq!(server.stats().swaps, 1);

        // A feature row whose embedding *is* the new class signature must
        // now resolve to the new class. Build it by encoding the class
        // attributes and asking the reference model for a matching feature:
        // here we simply verify via solo scoring that the class participates
        // and is reachable through the live query path.
        let (version, _) = server
            .query_traced(&[0.25; FEATURE_DIM])
            .expect("query served");
        assert_eq!(version, 1);

        // update_class only touches existing labels.
        assert!(matches!(
            server.update_class("missing", &new_attr),
            Err(ServeError::UnknownClass(_))
        ));
        let updated = server.update_class("hotdog", &new_attr).expect("updates");
        assert_eq!(updated.version(), 2);

        let removed = server.remove_class("hotdog").expect("removes");
        assert_eq!(removed.version(), 3);
        assert!(!removed.memory().contains("hotdog"));
        assert!(matches!(
            server.remove_class("hotdog"),
            Err(ServeError::UnknownClass(_))
        ));
        // Mis-sized attribute rows are rejected with a typed error.
        assert!(matches!(
            server.register_class("bad", &[1.0; 3]),
            Err(ServeError::AttributeWidth {
                expected: 312,
                found: 3
            })
        ));
    }

    /// Removing every class is refused — the server must stay servable.
    #[test]
    fn cannot_remove_the_last_class() {
        let (model, _, _, _) = fixture();
        let class_attributes = Matrix::ones(1, 312);
        let server = QueryServer::start(
            model,
            vec!["only".to_string()],
            &class_attributes,
            ServerConfig::default(),
        )
        .expect("server starts");
        assert!(matches!(
            server.remove_class("only"),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    /// A full model swap atomically replaces the serving state; queries
    /// served after the swap are bit-identical to solo scoring against the
    /// new snapshot.
    #[test]
    fn swap_model_replaces_serving_state() {
        let (model, labels, class_attributes, schema) = fixture();
        let server = QueryServer::start(
            model,
            labels.clone(),
            &class_attributes,
            ServerConfig::default(),
        )
        .expect("server starts");
        // A different seed gives a genuinely different model.
        let new_model = ZscModel::new(&ModelConfig::tiny().with_seed(77), &schema, FEATURE_DIM);
        let swapped = server
            .swap_model(new_model, labels, &class_attributes)
            .expect("swaps");
        assert_eq!(swapped.version(), 1);
        let q = vec![0.5; FEATURE_DIM];
        let (version, served) = server.query_traced(&q).expect("query served");
        assert_eq!(version, 1);
        assert_eq!(served, swapped.solo_topk(&q, ServerConfig::default().top_k));
        // Feature-width mismatches are rejected before anything swaps.
        let wrong = ZscModel::new(&ModelConfig::tiny(), &schema, FEATURE_DIM + 1);
        assert!(matches!(
            server.swap_model(wrong, vec!["x".into()], &Matrix::ones(1, 312)),
            Err(ServeError::InvalidConfig(_))
        ));
        // Attribute-width mismatches get a typed error *before* the control
        // mutex is taken (the encoder would panic and poison it otherwise)...
        let narrow = ZscModel::new(&ModelConfig::tiny(), &schema, FEATURE_DIM);
        assert!(matches!(
            server.swap_model(narrow, vec!["x".into()], &Matrix::ones(1, 200)),
            Err(ServeError::AttributeWidth {
                expected: 312,
                found: 200
            })
        ));
        // ...so the mutation plane stays healthy afterwards.
        assert!(server.register_class("still-alive", &[1.0; 312]).is_ok());
    }

    /// Pins the serving truncation contract: `top_k` past the registered
    /// class count returns every class, and keeps working as classes come
    /// and go.
    #[test]
    fn top_k_truncates_to_registered_class_count() {
        let (model, _, _, _) = fixture();
        let class_attributes = Matrix::ones(2, 312);
        let server = QueryServer::start(
            model,
            vec!["a".to_string(), "b".to_string()],
            &class_attributes,
            ServerConfig {
                top_k: 50,
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let q = vec![0.5; FEATURE_DIM];
        assert_eq!(server.query(&q).expect("served").len(), 2);
        server.register_class("c", &[1.0; 312]).expect("registers");
        assert_eq!(server.query(&q).expect("served").len(), 3);
        server.remove_class("a").expect("removes");
        assert_eq!(server.query(&q).expect("served").len(), 2);
    }

    #[test]
    fn wrong_feature_width_is_rejected_up_front() {
        let (model, labels, class_attributes, _) = fixture();
        let server = QueryServer::start(model, labels, &class_attributes, ServerConfig::default())
            .expect("server starts");
        assert_eq!(server.feature_dim(), FEATURE_DIM);
        match server.query(&[0.0; FEATURE_DIM + 1]) {
            Err(ServeError::FeatureWidth { expected, found }) => {
                assert_eq!((expected, found), (FEATURE_DIM, FEATURE_DIM + 1));
            }
            other => panic!("expected FeatureWidth, got {other:?}"),
        }
        // Nothing was enqueued, so the server still serves correct rows.
        assert!(server.query(&[0.5; FEATURE_DIM]).is_ok());
        assert_eq!(server.stats().queries, 1);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        let (model, labels, class_attributes, _) = fixture();
        let mut short_labels = labels.clone();
        short_labels.pop();
        assert!(matches!(
            QueryServer::start(
                model.clone(),
                short_labels,
                &class_attributes,
                ServerConfig::default()
            ),
            Err(ServeError::InvalidConfig(_))
        ));
        for broken in [
            ServerConfig {
                max_batch: 0,
                ..ServerConfig::default()
            },
            ServerConfig {
                top_k: 0,
                ..ServerConfig::default()
            },
            ServerConfig {
                shards: 0,
                ..ServerConfig::default()
            },
        ] {
            assert!(matches!(
                QueryServer::start(model.clone(), labels.clone(), &class_attributes, broken),
                Err(ServeError::InvalidConfig(_))
            ));
        }
    }

    /// The acceptance path: a checkpoint saved and reloaded serves queries
    /// bit-identical to the in-process model it was captured from.
    #[test]
    fn checkpoint_round_trip_serves_bit_identical_results() {
        let (model, labels, class_attributes, schema) = fixture();
        let reference_model = model.clone();
        let memory = reference_model.sharded_class_memory(
            labels.clone(),
            &class_attributes,
            ServerConfig::default().shards,
        );
        let json = Checkpoint::capture(&model, &schema).to_json();
        drop(model);
        let reloaded = Checkpoint::from_json_str(&json).expect("checkpoint parses");
        let server = QueryServer::from_checkpoint(
            reloaded,
            &schema,
            labels,
            &class_attributes,
            ServerConfig::default(),
        )
        .expect("server starts from checkpoint");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let q = Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                .row(0)
                .to_vec();
            let served = server.query(&q).expect("query served");
            let expected = reference_topk(&reference_model, &memory, &q, 5);
            assert_eq!(served, expected);
        }
    }

    /// The streaming continual-learning contract on a live server: observes
    /// below the `publish_every` boundary fold counters without publishing,
    /// the boundary observe (or an explicit flush) hot-swaps one snapshot,
    /// and the published prototype is **bit-identical** to re-signing the
    /// exact counters recomputed from first principles — seed prototype
    /// plus every streamed example.
    #[test]
    fn streamed_observes_batch_publications_and_resign_exactly() {
        let (model, labels, class_attributes, _) = fixture();
        let reference_model = model.clone();
        let server = QueryServer::start(
            model,
            labels,
            &class_attributes,
            ServerConfig {
                publish_every: 3,
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let initial = server.snapshot();
        let dim = initial.memory().dim();
        let mut rng = StdRng::seed_from_u64(21);
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|_| {
                Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                    .row(0)
                    .to_vec()
            })
            .collect();

        // Typed rejections first, so the stream below starts from a clean
        // batching position.
        assert!(matches!(
            server.observe("nope", &rows[0]),
            Err(ServeError::UnknownClass(_))
        ));
        assert!(matches!(
            server.observe("class1", &rows[0][..FEATURE_DIM - 1]),
            Err(ServeError::FeatureWidth { .. })
        ));
        assert_eq!(server.stream_stats().observes, 0);

        // Two observes under the boundary: counters advance, nothing
        // publishes, queries still see version 0.
        assert!(server
            .observe("class1", &rows[0])
            .expect("observe")
            .is_none());
        assert!(server
            .observe("class2", &rows[1])
            .expect("observe")
            .is_none());
        assert_eq!(server.snapshot().version(), 0);
        let stats = server.stream_stats();
        assert_eq!((stats.observes, stats.pending_classes), (2, 2));
        assert_eq!(stats.since_publish, 2);

        // The third observe lands the boundary: one snapshot carries both
        // pending classes.
        let published = server
            .observe("class1", &rows[2])
            .expect("observe")
            .expect("boundary publishes");
        assert_eq!(published.version(), 1);
        let stats = server.stream_stats();
        assert_eq!((stats.pending_classes, stats.since_publish), (0, 0));
        // `publishes` counts class-version publications: the one boundary
        // re-signed two classes.
        assert_eq!(stats.publishes, 2);

        // Bit-identity from first principles: seed each class's counters
        // with the version-0 prototype as one pseudo-example, fold the
        // streamed examples, re-sign, and the published row must match.
        let encode = |row: &[f32]| {
            let embedding = reference_model.embed_images(&Matrix::from_rows(&[row.to_vec()]));
            engine::pack_float_signs(embedding.row(0))
        };
        let unpack = |words: &[u64]| -> Vec<i8> {
            (0..dim)
                .map(|i| {
                    if words[i / 64] >> (i % 64) & 1 == 1 {
                        -1
                    } else {
                        1
                    }
                })
                .collect()
        };
        for (label, streamed) in [
            ("class1", vec![&rows[0], &rows[2]]),
            ("class2", vec![&rows[1]]),
        ] {
            let mut acc = hdc::ClassAccumulator::new(dim);
            let seed = unpack(initial.memory().class_words(label).expect("seed row"));
            acc.observe(label, &hdc::BipolarHypervector::from_signs(&seed))
                .expect("seed folds");
            for row in streamed {
                let signs = unpack(&encode(row));
                acc.observe(label, &hdc::BipolarHypervector::from_signs(&signs))
                    .expect("example folds");
            }
            let expected = engine::pack_signs(acc.prototype(label).expect("prototype").as_slice());
            assert_eq!(
                published
                    .memory()
                    .class_words(label)
                    .expect("published row"),
                expected.as_slice(),
                "{label}: published prototype is not the exact counter re-sign"
            );
        }

        // An explicit flush publishes a partial batch immediately…
        assert!(server
            .observe("class3", &rows[3])
            .expect("observe")
            .is_none());
        assert_eq!(server.flush().expect("flush").version(), 2);
        // …and flushing with nothing pending is a version-preserving no-op.
        assert_eq!(server.flush().expect("idle flush").version(), 2);
        assert_eq!(server.stream_stats().publishes, 3);
        assert_eq!(server.drift_report().classes.len(), 3);
        // Non-durable server: no WAL, no durability stats.
        assert!(server.durability_stats().is_none());
    }

    #[test]
    fn checkpoint_schema_mismatch_is_typed() {
        let (model, labels, class_attributes, schema) = fixture();
        let checkpoint = Checkpoint::capture(&model, &schema);
        let other = AttributeSchema::synthetic(3, 4);
        assert!(matches!(
            QueryServer::from_checkpoint(
                checkpoint,
                &other,
                labels,
                &class_attributes,
                ServerConfig::default()
            ),
            Err(ServeError::Checkpoint(_))
        ));
    }
}
