//! Online serving subsystem for the HDC-ZSC reproduction.
//!
//! This crate is the bridge between the `engine` crate's batched popcount
//! inference and real sustained-traffic serving, completing the
//! *train-once / serve-many* lifecycle:
//!
//! 1. train a model with `hdc_zsc::Pipeline::run_returning_model`;
//! 2. persist it with `hdc_zsc::Checkpoint::save_json`;
//! 3. reload it in the serving process with `hdc_zsc::Checkpoint::load_json`;
//! 4. put a [`QueryServer`] in front of it.
//!
//! The [`QueryServer`] owns the loaded model plus the packed class memory
//! derived from it, and runs a **micro-batching admission queue**: concurrent
//! callers each submit one backbone-feature row (or a small batch); the
//! server coalesces whatever arrives within a short window into one engine
//! dispatch and hands every caller its own top-k labels. Because each
//! query's scores are independent rows of the engine's batched sweep,
//! served results are bit-identical to scoring the same query alone — the
//! batching changes throughput, never outputs.
//!
//! The `zsc_serve` binary drives the whole lifecycle end to end and reports
//! the same JSON statistics shape as the `serve_sim` benchmark.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod server;

pub use server::{QueryServer, ScoredLabel, ServeError, ServerConfig, ServerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::AttributeSchema;
    use engine::{pack_float_signs, PackedClassMemory};
    use hdc_zsc::{Checkpoint, ModelConfig, ZscModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Matrix;

    const FEATURE_DIM: usize = 24;

    fn fixture() -> (ZscModel, Vec<String>, Matrix, AttributeSchema) {
        let schema = AttributeSchema::cub200();
        let model = ZscModel::new(&ModelConfig::tiny().with_seed(11), &schema, FEATURE_DIM);
        let mut rng = StdRng::seed_from_u64(5);
        let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
        let labels: Vec<String> = (0..9).map(|c| format!("class{c}")).collect();
        (model, labels, class_attributes, schema)
    }

    /// The serving reference: what one query scored alone through the same
    /// model + packed memory must return.
    fn reference_topk(
        model: &mut ZscModel,
        memory: &PackedClassMemory,
        features: &[f32],
        k: usize,
    ) -> Vec<ScoredLabel> {
        let embedding = model.embed_images(&Matrix::from_rows(&[features.to_vec()]), false);
        let packed = pack_float_signs(embedding.row(0));
        memory
            .top_k(&packed, k)
            .into_iter()
            .map(|(index, sim)| (memory.label(index).to_string(), sim))
            .collect()
    }

    #[test]
    fn served_results_are_bit_identical_to_direct_scoring() {
        let (model, labels, class_attributes, _) = fixture();
        let mut reference_model = model.clone();
        let memory = reference_model.packed_class_memory(labels.clone(), &class_attributes);
        let mut rng = StdRng::seed_from_u64(6);
        let queries: Vec<Vec<f32>> = (0..40)
            .map(|_| {
                Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                    .row(0)
                    .to_vec()
            })
            .collect();
        for (max_batch, threads) in [(1usize, 1usize), (8, 2), (64, 3)] {
            let server = QueryServer::start(
                model.clone(),
                labels.clone(),
                &class_attributes,
                ServerConfig {
                    max_batch,
                    max_wait_us: 100,
                    threads,
                    top_k: 4,
                },
            )
            .expect("server starts");
            for q in &queries {
                let served = server.query(q).expect("query served");
                let expected = reference_topk(&mut reference_model, &memory, q, 4);
                assert_eq!(served.len(), expected.len());
                for ((sl, ss), (el, es)) in served.iter().zip(&expected) {
                    assert_eq!(sl, el, "max_batch={max_batch} threads={threads}");
                    assert_eq!(ss.to_bits(), es.to_bits());
                }
            }
        }
    }

    #[test]
    fn concurrent_callers_coalesce_into_batches() {
        let (model, labels, class_attributes, _) = fixture();
        let mut reference_model = model.clone();
        let memory = reference_model.packed_class_memory(labels.clone(), &class_attributes);
        let server = QueryServer::start(
            model,
            labels,
            &class_attributes,
            ServerConfig {
                max_batch: 16,
                max_wait_us: 2_000,
                threads: 2,
                top_k: 3,
            },
        )
        .expect("server starts");
        let mut rng = StdRng::seed_from_u64(7);
        let queries: Vec<Vec<f32>> = (0..48)
            .map(|_| {
                Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                    .row(0)
                    .to_vec()
            })
            .collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in queries.chunks(6) {
                let server = &server;
                handles.push(scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|q| server.query(q).expect("query served"))
                        .collect::<Vec<_>>()
                }));
            }
            for (handle, chunk) in handles.into_iter().zip(queries.chunks(6)) {
                for (served, q) in handle.join().expect("caller thread").into_iter().zip(chunk) {
                    let expected = reference_topk(&mut reference_model, &memory, q, 3);
                    assert_eq!(served, expected);
                }
            }
        });
        let stats = server.stats();
        assert_eq!(stats.queries, 48);
        assert!(stats.batches >= 1);
        assert!(stats.max_batch_observed <= 16);
        assert!(stats.mean_batch() >= 1.0);
    }

    #[test]
    fn query_batch_preserves_submission_order() {
        let (model, labels, class_attributes, _) = fixture();
        let mut reference_model = model.clone();
        let memory = reference_model.packed_class_memory(labels.clone(), &class_attributes);
        let server = QueryServer::start(model, labels, &class_attributes, ServerConfig::default())
            .expect("server starts");
        let mut rng = StdRng::seed_from_u64(8);
        let rows: Vec<Vec<f32>> = (0..10)
            .map(|_| {
                Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                    .row(0)
                    .to_vec()
            })
            .collect();
        let served = server.query_batch(&rows).expect("batch served");
        assert_eq!(served.len(), rows.len());
        for (result, row) in served.iter().zip(&rows) {
            assert_eq!(
                result,
                &reference_topk(&mut reference_model, &memory, row, 5)
            );
        }
    }

    #[test]
    fn wrong_feature_width_is_rejected_up_front() {
        let (model, labels, class_attributes, _) = fixture();
        let server = QueryServer::start(model, labels, &class_attributes, ServerConfig::default())
            .expect("server starts");
        assert_eq!(server.feature_dim(), FEATURE_DIM);
        match server.query(&[0.0; FEATURE_DIM + 1]) {
            Err(ServeError::FeatureWidth { expected, found }) => {
                assert_eq!((expected, found), (FEATURE_DIM, FEATURE_DIM + 1));
            }
            other => panic!("expected FeatureWidth, got {other:?}"),
        }
        // Nothing was enqueued, so the server still serves correct rows.
        assert!(server.query(&[0.5; FEATURE_DIM]).is_ok());
        assert_eq!(server.stats().queries, 1);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        let (model, labels, class_attributes, _) = fixture();
        let mut short_labels = labels.clone();
        short_labels.pop();
        assert!(matches!(
            QueryServer::start(
                model.clone(),
                short_labels,
                &class_attributes,
                ServerConfig::default()
            ),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            QueryServer::start(
                model.clone(),
                labels.clone(),
                &class_attributes,
                ServerConfig {
                    max_batch: 0,
                    ..ServerConfig::default()
                }
            ),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            QueryServer::start(
                model,
                labels,
                &class_attributes,
                ServerConfig {
                    top_k: 0,
                    ..ServerConfig::default()
                }
            ),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    /// The acceptance path: a checkpoint saved and reloaded serves queries
    /// bit-identical to the in-process model it was captured from.
    #[test]
    fn checkpoint_round_trip_serves_bit_identical_results() {
        let (model, labels, class_attributes, schema) = fixture();
        let mut reference_model = model.clone();
        let memory = reference_model.packed_class_memory(labels.clone(), &class_attributes);
        let json = Checkpoint::capture(&model, &schema).to_json();
        drop(model);
        let reloaded = Checkpoint::from_json_str(&json).expect("checkpoint parses");
        let server = QueryServer::from_checkpoint(
            reloaded,
            &schema,
            labels,
            &class_attributes,
            ServerConfig::default(),
        )
        .expect("server starts from checkpoint");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let q = Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                .row(0)
                .to_vec();
            let served = server.query(&q).expect("query served");
            let expected = reference_topk(&mut reference_model, &memory, &q, 5);
            assert_eq!(served, expected);
        }
    }

    #[test]
    fn checkpoint_schema_mismatch_is_typed() {
        let (model, labels, class_attributes, schema) = fixture();
        let checkpoint = Checkpoint::capture(&model, &schema);
        let other = AttributeSchema::synthetic(3, 4);
        assert!(matches!(
            QueryServer::from_checkpoint(
                checkpoint,
                &other,
                labels,
                &class_attributes,
                ServerConfig::default()
            ),
            Err(ServeError::Checkpoint(_))
        ));
    }
}
