//! Property tests for the checkpoint subsystem: save → load must be
//! bit-identical for the model's entire inference surface across tiny
//! configurations, and malformed documents must be rejected with typed
//! errors, never panics.

use dataset::{AttributeSchema, CubLikeDataset, DatasetConfig, SplitKind};
use hdc_zsc::{
    AttributeEncoderKind, Checkpoint, CheckpointError, ModelConfig, Pipeline, TrainConfig, ZscModel,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Matrix;

fn schema() -> AttributeSchema {
    AttributeSchema::cub200()
}

/// Builds a model across the configuration axes the checkpoint must cover:
/// both encoder kinds, with/without the FC projection, varying dims.
fn build_model(
    embedding_dim: usize,
    feature_dim: usize,
    use_projection: bool,
    mlp_encoder: bool,
    seed: u64,
) -> ZscModel {
    let kind = if mlp_encoder {
        AttributeEncoderKind::TrainableMlp
    } else {
        AttributeEncoderKind::Hdc
    };
    let config = ModelConfig::tiny()
        .with_embedding_dim(embedding_dim)
        .with_projection(use_projection)
        .with_attribute_encoder(kind)
        .with_seed(seed);
    ZscModel::new(&config, &schema(), feature_dim)
}

proptest! {
    /// save → load → `class_logits` / `attribute_logits` bit-identical to
    /// the original model, across tiny configs.
    #[test]
    fn round_trip_is_bit_identical(
        embedding_dim in 8usize..48,
        feature_dim in 4usize..32,
        use_projection in proptest::arbitrary::any::<bool>(),
        mlp_encoder in proptest::arbitrary::any::<bool>(),
        seed in 0u64..1_000,
        batch in 1usize..5,
    ) {
        let s = schema();
        let model =
            build_model(embedding_dim, feature_dim, use_projection, mlp_encoder, seed);
        let json = Checkpoint::capture(&model, &s).to_json();
        // The serving load path: straight into the immutable frozen view.
        let restored = Checkpoint::from_json_str(&json)
            .expect("round trip parses")
            .into_frozen(&s)
            .expect("schema matches");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let features = Matrix::random_uniform(batch, feature_dim, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(5, 312, 0.5, &mut rng).map(f32::abs);
        let original = model.class_logits(&features, &class_attributes);
        let loaded = restored.class_logits(&features, &class_attributes);
        prop_assert_eq!(original.as_slice(), loaded.as_slice());
        let original_attr = model.attribute_logits(&features);
        let loaded_attr = restored.attribute_logits(&features);
        prop_assert_eq!(original_attr.as_slice(), loaded_attr.as_slice());
    }

    /// Truncating a checkpoint document anywhere must produce a typed error
    /// (never a panic, never a silently-accepted document).
    #[test]
    fn truncated_documents_are_rejected(
        cut_per_mille in 0usize..1000,
        seed in 0u64..100,
    ) {
        let s = schema();
        let model = build_model(12, 6, true, false, seed);
        let json = Checkpoint::capture(&model, &s).to_json();
        let cut = json.len() * cut_per_mille / 1000;
        // Cut on a char boundary.
        let mut end = cut.min(json.len().saturating_sub(1));
        while !json.is_char_boundary(end) {
            end -= 1;
        }
        let truncated = &json[..end];
        match Checkpoint::from_json_str(truncated) {
            Err(CheckpointError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "expected Malformed, got {other:?}"),
            Ok(_) => prop_assert!(false, "truncated document was accepted"),
        }
    }
}

/// A *trained* model round-trips too: the pipeline's returned model, saved
/// and reloaded, reproduces the reported zero-shot evaluation exactly.
#[test]
fn trained_model_round_trip_reproduces_outcome() {
    let data = CubLikeDataset::generate(&DatasetConfig::tiny(31));
    let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(2));
    let (outcome, model) = pipeline.run_returning_model(&data, SplitKind::Zs, 1);
    let json = Checkpoint::capture(&model, data.schema()).to_json();
    drop(model);
    let restored = Checkpoint::from_json_str(&json)
        .expect("parses")
        .into_frozen(data.schema())
        .expect("schema matches");
    let split = data.split(SplitKind::Zs);
    let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
    let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
    let eval_class_attr = data.class_attribute_matrix(split.eval_classes());
    let report = hdc_zsc::evaluate_zsc(&restored, &eval_x, &eval_local, &eval_class_attr);
    assert_eq!(report, outcome.zsc);
}

/// Corruptions that keep the JSON well-formed but break an invariant must
/// surface as typed errors naming the broken part.
#[test]
fn structurally_corrupted_documents_are_rejected_with_typed_errors() {
    let s = schema();
    let model = build_model(16, 8, true, false, 3);
    let json = Checkpoint::capture(&model, &s).to_json();

    // Not JSON at all.
    assert!(matches!(
        Checkpoint::from_json_str("not json {"),
        Err(CheckpointError::Malformed(_))
    ));
    // Valid JSON, wrong shape entirely.
    assert!(matches!(
        Checkpoint::from_json_str("[1, 2, 3]"),
        Err(CheckpointError::Malformed(_))
    ));
    // Missing version field.
    let no_version = json.replacen("\"format_version\": 2,", "", 1);
    assert!(matches!(
        Checkpoint::from_json_str(&no_version),
        Err(CheckpointError::Malformed(_))
    ));
    // Future version: rejected before the payload is even decoded.
    let future = json.replacen("\"format_version\": 2", "\"format_version\": 7", 1);
    assert!(matches!(
        Checkpoint::from_json_str(&future),
        Err(CheckpointError::UnsupportedVersion { found: 7, .. })
    ));
    // A dictionary entry outside ±1 violates the HDC encoder invariant.
    let bad_dict = json.replacen("\"dictionary\": {", "\"dictionary_gone\": {", 1);
    let err = Checkpoint::from_json_str(&bad_dict).unwrap_err();
    let message = err.to_string();
    assert!(
        matches!(err, CheckpointError::Malformed(_)) && message.contains("dictionary"),
        "unexpected error: {message}"
    );
    // Envelope/payload disagreement on the feature width.
    let bad_width = json.replacen("\"feature_dim\": 8", "\"feature_dim\": 9", 1);
    assert!(matches!(
        Checkpoint::from_json_str(&bad_width),
        Err(CheckpointError::DimensionMismatch { .. })
    ));
    // Negative temperature.
    let value_of = |text: &str, key: &str| -> String {
        let start = text.find(key).expect("key present") + key.len();
        text[start..]
            .chars()
            .take_while(|c| !c.is_whitespace() && *c != ',' && *c != '}')
            .collect()
    };
    let k = value_of(&json, "\"temperature_k\": ");
    let bad_temp = json.replacen(
        &format!("\"temperature_k\": {k}"),
        "\"temperature_k\": -0.5",
        1,
    );
    assert!(matches!(
        Checkpoint::from_json_str(&bad_temp),
        Err(CheckpointError::Malformed(_))
    ));

    // The untouched document still parses (guards against the corruptions
    // above silently not applying).
    assert!(Checkpoint::from_json_str(&json).is_ok());
}

/// An *internally consistent* attribute encoder whose α disagrees with the
/// envelope must still be rejected with a typed error — not accepted and
/// left to panic at the first query.
#[test]
fn encoder_attribute_count_mismatch_is_rejected() {
    use serde::Value;

    fn entry_mut<'v>(value: &'v mut Value, key: &str) -> &'v mut Value {
        let Value::Object(entries) = value else {
            panic!("expected an object while looking for `{key}`");
        };
        &mut entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing key `{key}`"))
            .1
    }

    let config = ModelConfig::tiny()
        .with_attribute_encoder(AttributeEncoderKind::TrainableMlp)
        .with_seed(4);
    let cub = schema();
    let full = ZscModel::new(&config, &cub, 8);
    // Same configuration, but an attribute space of α = 12 instead of 312.
    let small_schema = AttributeSchema::synthetic(4, 3);
    let small = ZscModel::new(&config, &small_schema, 8);

    let mut doc = serde_json::parse_value(&Checkpoint::capture(&full, &cub).to_json())
        .expect("checkpoint JSON parses");
    let small_doc = serde_json::parse_value(&Checkpoint::capture(&small, &small_schema).to_json())
        .expect("checkpoint JSON parses");
    // Splice the α = 12 encoder (valid on its own) into the α = 312
    // envelope; everything else — fingerprint, phase-II dictionary — still
    // says 312.
    let small_encoder = small_doc
        .get("model")
        .and_then(|m| m.get("attribute_encoder"))
        .expect("encoder subtree present")
        .clone();
    *entry_mut(entry_mut(&mut doc, "model"), "attribute_encoder") = small_encoder;

    let tampered = serde_json::to_string(&doc).expect("render tampered document");
    match Checkpoint::from_json_str(&tampered) {
        Err(CheckpointError::DimensionMismatch {
            what,
            expected: 312,
            found: 12,
        }) => assert!(what.contains("encoder")),
        other => panic!("expected an encoder-α DimensionMismatch, got {other:?}"),
    }
}
