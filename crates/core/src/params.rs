//! Model-size accounting for the Pareto analysis of Fig. 4 and the model
//! comparison of Table II.
//!
//! The paper reports **26.6 M** trainable parameters for HDC-ZSC: the
//! ResNet50 trunk (without its ImageNet classification head) plus the FC
//! projection; the stationary HDC attribute encoder contributes none. The
//! helpers here reproduce that accounting so the harnesses can place every
//! model on the same parameter axis as the paper.

use crate::model::ZscModel;
use dataset::BackboneKind;
use serde::{Deserialize, Serialize};

/// Parameters of the ImageNet classification head (`2048 × 1000 + 1000`)
/// that is discarded after phase I and therefore excluded from the model
/// size, as in the paper's 26.6 M figure.
pub const IMAGENET_HEAD_PARAMS: usize = 2048 * 1000 + 1000;

/// Returns the backbone trunk size: the full architecture minus the ImageNet
/// classification head.
pub fn backbone_trunk_params(kind: BackboneKind) -> usize {
    kind.param_count() - IMAGENET_HEAD_PARAMS
}

/// A per-component breakdown of a model's parameter count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParameterBreakdown {
    /// Backbone trunk parameters (frozen after phase II, but part of the
    /// deployed model and of the paper's Fig. 4 axis).
    pub backbone: usize,
    /// FC projection parameters.
    pub projection: usize,
    /// Trainable attribute-encoder parameters (0 for the HDC encoder).
    pub attribute_encoder: usize,
    /// Temperature parameters (1 when learnable).
    pub temperature: usize,
}

impl ParameterBreakdown {
    /// Computes the breakdown of a model, combining the simulated backbone's
    /// *real-architecture* parameter count with the actual trainable
    /// parameter counts of the Rust components. Accounting is read-only
    /// (`&self` everywhere), so it also runs against a shared
    /// [`FrozenModel`](crate::FrozenModel).
    pub fn of(model: &ZscModel) -> Self {
        let backbone = backbone_trunk_params(model.image_encoder().backbone());
        // Count the components separately through the visitation order:
        // image encoder first, then temperature, then attribute encoder.
        let projection = model.image_encoder().num_trainable_params();
        let attribute_encoder = model.attribute_encoder().num_trainable_params();
        let temperature = model.num_trainable_params() - projection - attribute_encoder;
        Self {
            backbone,
            projection,
            attribute_encoder,
            temperature,
        }
    }

    /// Total deployed-model parameter count (the Fig. 4 x-axis).
    pub fn total(&self) -> usize {
        self.backbone + self.projection + self.attribute_encoder + self.temperature
    }

    /// Parameters updated during phases II/III (everything except the frozen
    /// backbone trunk).
    pub fn trainable(&self) -> usize {
        self.projection + self.attribute_encoder + self.temperature
    }

    /// Total in millions, as plotted in Fig. 4.
    pub fn total_millions(&self) -> f32 {
        self.total() as f32 / 1.0e6
    }
}

impl std::fmt::Display for ParameterBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}M total (backbone {:.1}M, projection {:.2}M, attribute encoder {:.2}M)",
            self.total_millions(),
            self.backbone as f32 / 1e6,
            self.projection as f32 / 1e6,
            self.attribute_encoder as f32 / 1e6
        )
    }
}

/// Parameter count of the paper's preferred HDC-ZSC configuration
/// (ResNet50 trunk + FC 2048→1536), for cross-checking against the published
/// 26.6 M figure without building a model.
pub fn paper_hdc_zsc_params() -> usize {
    backbone_trunk_params(BackboneKind::ResNet50) + 2048 * 1536 + 1536
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute_encoder::AttributeEncoderKind;
    use crate::config::ModelConfig;
    use dataset::AttributeSchema;

    #[test]
    fn trunk_excludes_imagenet_head() {
        assert_eq!(
            backbone_trunk_params(BackboneKind::ResNet50),
            25_557_032 - IMAGENET_HEAD_PARAMS
        );
        assert!(
            backbone_trunk_params(BackboneKind::ResNet101)
                > backbone_trunk_params(BackboneKind::ResNet50)
        );
    }

    #[test]
    fn paper_headline_parameter_count_is_26_6_million() {
        let total = paper_hdc_zsc_params() as f32 / 1e6;
        assert!(
            (total - 26.6).abs() < 0.2,
            "expected ≈26.6M parameters, computed {total:.2}M"
        );
    }

    #[test]
    fn breakdown_of_full_scale_model_matches_paper() {
        let schema = AttributeSchema::cub200();
        let model = ZscModel::new(&ModelConfig::paper_default(), &schema, 2048);
        let breakdown = ParameterBreakdown::of(&model);
        assert_eq!(breakdown.attribute_encoder, 0, "HDC encoder is stationary");
        assert_eq!(breakdown.projection, 2048 * 1536 + 1536);
        assert_eq!(breakdown.temperature, 1);
        assert!((breakdown.total_millions() - 26.6).abs() < 0.2);
        assert!(breakdown.trainable() < breakdown.total());
        assert!(format!("{breakdown}").contains("total"));
    }

    #[test]
    fn mlp_variant_has_more_trainable_params() {
        let schema = AttributeSchema::cub200();
        let hdc_model = ZscModel::new(&ModelConfig::tiny(), &schema, 48);
        let mlp_model = ZscModel::new(
            &ModelConfig::tiny().with_attribute_encoder(AttributeEncoderKind::TrainableMlp),
            &schema,
            48,
        );
        let hdc = ParameterBreakdown::of(&hdc_model);
        let mlp = ParameterBreakdown::of(&mlp_model);
        assert!(mlp.attribute_encoder > 0);
        assert!(mlp.total() > hdc.total());
        assert_eq!(hdc.backbone, mlp.backbone);
    }
}
