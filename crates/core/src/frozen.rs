//! The immutable inference view of a trained model.
//!
//! A [`FrozenModel`] is a cheaply clonable, `Send + Sync` handle around an
//! [`Arc<ZscModel>`]: one set of weights, shared by reference between any
//! number of threads. Every inference entry point of [`ZscModel`] takes
//! `&self` (the forward passes cache nothing), so the frozen view exposes
//! the whole inference surface — [`ZscModel::embed_images`],
//! [`ZscModel::attribute_logits`], [`ZscModel::class_logits`],
//! [`ZscModel::predict`], the packed/sharded class-memory exports and
//! [`ZscModel::packed_class_signature`] — through [`Deref`] without a single
//! deep copy.
//!
//! This is the serving contract the `serve` crate builds on: the
//! `QueryServer` dispatcher, `ModelSnapshot::solo_topk` and the class
//! registration control plane all operate on one shared `FrozenModel`
//! (cloning an `Arc`, never a weight matrix). Training, by contrast, keeps
//! the `&mut ZscModel` handle — to retrain a frozen model, [`thaw`] a
//! mutable copy, train it, and freeze the result into the next snapshot.
//!
//! [`thaw`]: FrozenModel::thaw

use crate::model::ZscModel;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, atomically reference-counted view of a trained
/// [`ZscModel`].
///
/// Cloning a `FrozenModel` clones the `Arc`, not the weights; all of
/// [`ZscModel`]'s `&self` inference methods are reachable through [`Deref`].
///
/// # Example
///
/// ```
/// use dataset::AttributeSchema;
/// use hdc_zsc::{FrozenModel, ModelConfig, ZscModel};
/// use tensor::Matrix;
///
/// let schema = AttributeSchema::cub200();
/// let frozen = ZscModel::new(&ModelConfig::tiny(), &schema, 32).freeze();
/// let handle = frozen.clone(); // Arc clone — no weights copied
/// assert!(frozen.ptr_eq(&handle));
/// // The whole inference surface is available through `&self`.
/// let logits = handle.class_logits(&Matrix::ones(2, 32), &Matrix::ones(3, 312));
/// assert_eq!(logits.shape(), (2, 3));
/// ```
#[derive(Debug, Clone)]
pub struct FrozenModel {
    inner: Arc<ZscModel>,
}

impl FrozenModel {
    /// Freezes a model into an immutable shared view.
    pub fn new(model: ZscModel) -> Self {
        Self {
            inner: Arc::new(model),
        }
    }

    /// Wraps an existing `Arc` without cloning the model.
    pub fn from_arc(inner: Arc<ZscModel>) -> Self {
        Self { inner }
    }

    /// The shared `Arc` itself, for callers that manage their own handles.
    pub fn as_arc(&self) -> &Arc<ZscModel> {
        &self.inner
    }

    /// Returns `true` if both handles point at the *same* model allocation —
    /// the pointer-identity probe the serve tests use to pin the zero-copy
    /// contract.
    pub fn ptr_eq(&self, other: &FrozenModel) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of live handles on the underlying model (`Arc::strong_count`).
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Clones the underlying weights back into a mutable [`ZscModel`] — the
    /// only way back to the training surface, and the only deep copy in the
    /// frozen model's lifecycle.
    pub fn thaw(&self) -> ZscModel {
        (*self.inner).clone()
    }
}

impl Deref for FrozenModel {
    type Target = ZscModel;

    fn deref(&self) -> &ZscModel {
        &self.inner
    }
}

impl From<ZscModel> for FrozenModel {
    fn from(model: ZscModel) -> Self {
        Self::new(model)
    }
}

impl From<Arc<ZscModel>> for FrozenModel {
    fn from(inner: Arc<ZscModel>) -> Self {
        Self::from_arc(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use dataset::AttributeSchema;
    use tensor::Matrix;

    fn frozen() -> FrozenModel {
        ZscModel::new(
            &ModelConfig::tiny().with_seed(3),
            &AttributeSchema::cub200(),
            40,
        )
        .freeze()
    }

    /// The serving layer shares frozen models across threads; this pins the
    /// auto-trait bounds at compile time.
    #[test]
    fn frozen_model_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenModel>();
        assert_send_sync::<ZscModel>();
    }

    #[test]
    fn clone_shares_the_allocation() {
        let a = frozen();
        let baseline = a.strong_count();
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a.strong_count(), baseline + 1);
        drop(b);
        assert_eq!(a.strong_count(), baseline);
    }

    #[test]
    fn inference_surface_is_reachable_and_matches_the_mutable_model() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let features = Matrix::random_uniform(3, 40, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(5, 312, 0.5, &mut rng).map(f32::abs);
        let frozen = frozen();
        let mutable = frozen.thaw();
        assert_eq!(
            frozen.class_logits(&features, &class_attributes).as_slice(),
            mutable
                .class_logits(&features, &class_attributes)
                .as_slice()
        );
        assert_eq!(
            frozen.attribute_logits(&features).as_slice(),
            mutable.attribute_logits(&features).as_slice()
        );
        assert_eq!(
            frozen.predict(&features, &class_attributes),
            mutable.predict(&features, &class_attributes)
        );
        assert_eq!(
            frozen.packed_class_signature(class_attributes.row(0)),
            mutable.packed_class_signature(class_attributes.row(0))
        );
        assert_eq!(
            frozen.num_trainable_params(),
            mutable.num_trainable_params()
        );
    }

    #[test]
    fn concurrent_readers_share_one_allocation() {
        let frozen = frozen();
        let features = Matrix::ones(2, 40);
        let class_attributes = Matrix::ones(4, 312);
        let reference = frozen.class_logits(&features, &class_attributes);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = frozen.clone();
                let (features, class_attributes, reference) =
                    (&features, &class_attributes, &reference);
                scope.spawn(move || {
                    let logits = handle.class_logits(features, class_attributes);
                    assert_eq!(logits.as_slice(), reference.as_slice());
                });
            }
        });
        assert_eq!(frozen.strong_count(), 1);
    }
}
