//! Training loops for phase II (attribute extraction) and phase III
//! (zero-shot classification fine-tuning).

use crate::config::TrainConfig;
use crate::model::ZscModel;
use dataset::BatchIterator;
use nn::loss::{cross_entropy, positive_weights_from_targets, weighted_bce_with_logits};
use nn::{AdamW, CosineAnnealingLr, LrSchedule, Optimizer};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Per-epoch record of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrainingHistory {
    /// Mean loss per epoch.
    pub epoch_loss: Vec<f32>,
    /// Learning rate used in each epoch.
    pub epoch_lr: Vec<f32>,
}

impl TrainingHistory {
    /// Loss of the final epoch (`None` if no epochs were run).
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_loss.last().copied()
    }

    /// Number of completed epochs.
    pub fn epochs(&self) -> usize {
        self.epoch_loss.len()
    }

    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_loss.first(), self.epoch_loss.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

/// Phase II: trains the FC projection (and temperature) so that image
/// embeddings align with the stationary attribute dictionary, using the
/// class-imbalance-weighted BCE loss of §III-A.
#[derive(Debug, Clone)]
pub struct AttributeExtractionTrainer {
    config: TrainConfig,
}

impl AttributeExtractionTrainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The training hyper-parameters.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs phase II on `(features, attribute_targets)` pairs
    /// (`N×d'` and `N×α`).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or no samples are provided.
    pub fn train(
        &self,
        model: &mut ZscModel,
        features: &Matrix,
        attribute_targets: &Matrix,
    ) -> TrainingHistory {
        assert_eq!(
            features.rows(),
            attribute_targets.rows(),
            "one attribute-target row per feature row required"
        );
        assert!(features.rows() > 0, "cannot train on an empty set");
        let pos_weights =
            positive_weights_from_targets(attribute_targets, self.config.max_pos_weight);
        let mut optimizer = AdamW::with_weight_decay(self.config.weight_decay);
        let schedule =
            CosineAnnealingLr::new(self.config.learning_rate, self.config.learning_rate * 1e-2);
        let mut history = TrainingHistory::default();
        for epoch in 0..self.config.epochs {
            let lr = schedule.lr_at(epoch, self.config.epochs);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in BatchIterator::new(
                features.rows(),
                self.config.batch_size,
                epoch,
                self.config.seed,
            ) {
                let x = features.select_rows(&batch);
                let t = attribute_targets.select_rows(&batch);
                model.zero_grad();
                let logits = model.attribute_logits_train(&x);
                let loss = weighted_bce_with_logits(&logits, &t, &pos_weights);
                model.backward_attribute(&loss.grad);
                optimizer.step(lr, &mut |f| model.visit_params(f));
                model.post_step();
                epoch_loss += loss.loss;
                batches += 1;
            }
            history.epoch_loss.push(epoch_loss / batches.max(1) as f32);
            history.epoch_lr.push(lr);
        }
        history
    }
}

/// Phase III: fine-tunes the FC projection (plus, for the trainable-MLP
/// variant, the attribute encoder) with cross entropy over class logits.
#[derive(Debug, Clone)]
pub struct ZscTrainer {
    config: TrainConfig,
}

impl ZscTrainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The training hyper-parameters.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Runs phase III.
    ///
    /// * `features` — backbone features of the training images (`N×d'`);
    /// * `labels` — *local* class indices (row indices into
    ///   `class_attributes`), one per feature row;
    /// * `class_attributes` — the `C_train×α` class-attribute matrix of the
    ///   *seen* classes.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree, a label is out of range, or no
    /// samples are provided.
    pub fn train(
        &self,
        model: &mut ZscModel,
        features: &Matrix,
        labels: &[usize],
        class_attributes: &Matrix,
    ) -> TrainingHistory {
        assert_eq!(
            features.rows(),
            labels.len(),
            "one label per feature row required"
        );
        assert!(features.rows() > 0, "cannot train on an empty set");
        assert!(
            labels.iter().all(|&l| l < class_attributes.rows()),
            "labels must index rows of the class attribute matrix"
        );
        let mut optimizer = AdamW::with_weight_decay(self.config.weight_decay);
        let schedule =
            CosineAnnealingLr::new(self.config.learning_rate, self.config.learning_rate * 1e-2);
        let mut history = TrainingHistory::default();
        for epoch in 0..self.config.epochs {
            let lr = schedule.lr_at(epoch, self.config.epochs);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in BatchIterator::new(
                features.rows(),
                self.config.batch_size,
                epoch,
                self.config.seed,
            ) {
                let x = features.select_rows(&batch);
                let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                model.zero_grad();
                let logits = model.class_logits_train(&x, class_attributes);
                let loss = cross_entropy(&logits, &y);
                model.backward_class(&loss.grad);
                optimizer.step(lr, &mut |f| model.visit_params(f));
                model.post_step();
                epoch_loss += loss.loss;
                batches += 1;
            }
            history.epoch_loss.push(epoch_loss / batches.max(1) as f32);
            history.epoch_lr.push(lr);
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::eval::evaluate_zsc;
    use dataset::{AttributeSchema, CubLikeDataset, DatasetConfig, SplitKind};

    fn fixture() -> (CubLikeDataset, AttributeSchema) {
        // A little above the tiny() minimum: zero-shot transfer on the ZS
        // split needs enough classes, images and feature dimensions for the
        // margin over chance to be stable across RNG streams.
        let mut config = DatasetConfig::tiny(5);
        config.num_classes = 24;
        config.images_per_class = 14;
        config.feature_dim = 128;
        let data = CubLikeDataset::generate(&config);
        let schema = data.schema().clone();
        (data, schema)
    }

    #[test]
    fn history_helpers() {
        let empty = TrainingHistory::default();
        assert_eq!(empty.final_loss(), None);
        assert!(!empty.improved());
        let h = TrainingHistory {
            epoch_loss: vec![1.0, 0.5],
            epoch_lr: vec![0.01, 0.005],
        };
        assert_eq!(h.final_loss(), Some(0.5));
        assert_eq!(h.epochs(), 2);
        assert!(h.improved());
    }

    #[test]
    fn attribute_extraction_reduces_loss() {
        let (data, schema) = fixture();
        let split = data.split(SplitKind::NoZs);
        let (features, targets) = data.features_and_attributes(split.train_classes());
        let mut model = ZscModel::new(&ModelConfig::tiny(), &schema, data.config().feature_dim);
        let trainer = AttributeExtractionTrainer::new(TrainConfig::fast().with_epochs(5));
        assert_eq!(trainer.config().epochs, 5);
        let history = trainer.train(&mut model, &features, &targets);
        assert_eq!(history.epochs(), 5);
        assert!(
            history.improved(),
            "phase II loss did not improve: {:?}",
            history.epoch_loss
        );
    }

    #[test]
    fn zsc_training_reduces_loss_and_beats_chance() {
        let (data, schema) = fixture();
        let split = data.split(SplitKind::Zs);
        let (features, labels) = data.features_and_labels(split.train_classes());
        let local = CubLikeDataset::to_local_labels(&labels, split.train_classes());
        let class_attributes = data.class_attribute_matrix(split.train_classes());
        let mut model = ZscModel::new(&ModelConfig::tiny(), &schema, data.config().feature_dim);
        let trainer = ZscTrainer::new(TrainConfig::fast().with_epochs(12));
        let history = trainer.train(&mut model, &features, &local, &class_attributes);
        assert!(history.improved(), "phase III loss did not improve");
        // Evaluate zero-shot on the unseen classes. The tiny fixture is far
        // below the paper's scale, so we only require a clear margin over
        // chance (the full-scale shape is checked by the bench harnesses).
        let (eval_features, eval_labels) = data.features_and_labels(split.eval_classes());
        let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
        let eval_attributes = data.class_attribute_matrix(split.eval_classes());
        let report = evaluate_zsc(&model, &eval_features, &eval_local, &eval_attributes);
        let chance = 1.0 / split.eval_classes().len() as f32;
        assert!(
            report.top1 > chance * 1.4,
            "zero-shot accuracy {} did not beat chance {}",
            report.top1,
            chance
        );
    }

    #[test]
    #[should_panic(expected = "one label per feature row")]
    fn zsc_trainer_validates_label_count() {
        let (data, schema) = fixture();
        let mut model = ZscModel::new(&ModelConfig::tiny(), &schema, data.config().feature_dim);
        let trainer = ZscTrainer::new(TrainConfig::fast());
        let features = Matrix::ones(3, data.config().feature_dim);
        let class_attributes = Matrix::ones(2, 312);
        let _ = trainer.train(&mut model, &features, &[0], &class_attributes);
    }

    #[test]
    #[should_panic(expected = "cannot train on an empty set")]
    fn attribute_trainer_rejects_empty_input() {
        let (data, schema) = fixture();
        let mut model = ZscModel::new(&ModelConfig::tiny(), &schema, data.config().feature_dim);
        let trainer = AttributeExtractionTrainer::new(TrainConfig::fast());
        let _ = trainer.train(
            &mut model,
            &Matrix::zeros(0, data.config().feature_dim),
            &Matrix::zeros(0, 312),
        );
    }
}
