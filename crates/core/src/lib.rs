//! **HDC-ZSC** — Zero-shot Classification using Hyperdimensional Computing.
//!
//! This crate implements the primary contribution of the DATE 2024 paper
//! *"Zero-shot Classification using Hyperdimensional Computing"* (Ruffino et
//! al.): a hybrid zero-shot classifier made of
//!
//! 1. a trainable **image encoder** `γ(·)` — a (simulated) pretrained
//!    backbone followed by an FC projection to the shared embedding
//!    dimension `d` ([`ImageEncoder`]);
//! 2. a **stationary HDC attribute encoder** `ϕ(·)` — random bipolar group
//!    and value codebooks bound on the fly into a 312-row attribute
//!    dictionary `B`, from which class embeddings are formed as `ϕ = A×B`
//!    ([`HdcAttributeEncoder`]); a trainable 2-layer MLP variant
//!    ([`MlpAttributeEncoder`]) is provided as the paper's *Trainable-MLP*
//!    baseline;
//! 3. a **cosine similarity kernel** with a learnable temperature relating
//!    image and class embeddings ([`nn::CosineSimilarity`]).
//!
//! Training follows the paper's three phases:
//!
//! * **Phase I** — backbone pre-training (absorbed into the simulated
//!   backbone, see the `dataset` crate);
//! * **Phase II** — attribute extraction: the FC projection is trained with
//!   a weighted BCE loss to align image embeddings with the attribute
//!   dictionary ([`AttributeExtractionTrainer`]);
//! * **Phase III** — zero-shot classification: the FC projection (and, for
//!   the MLP variant, the attribute encoder) is fine-tuned with cross
//!   entropy over class logits ([`ZscTrainer`]), then evaluated on classes
//!   never seen during training ([`evaluate_zsc`]).
//!
//! # Quickstart
//!
//! ```
//! use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
//! use hdc_zsc::{ModelConfig, Pipeline, TrainConfig};
//!
//! let data = CubLikeDataset::generate(&DatasetConfig::tiny(1));
//! let model_cfg = ModelConfig::tiny();
//! let train_cfg = TrainConfig::fast();
//! let outcome = Pipeline::new(model_cfg, train_cfg).run(&data, SplitKind::Zs, 1);
//! assert!(outcome.zsc.top1 > 0.0);
//! ```
//!
//! # Deployment lifecycle
//!
//! Models follow a **train-once / serve-many** lifecycle. Training owns
//! the one `&mut` [`ZscModel`] handle; everything downstream reads
//! through `&self`:
//!
//! * [`Pipeline::run_returning_model`] returns the exact model behind
//!   the reported outcome (nothing is retrained);
//! * [`Checkpoint::capture`] + [`Checkpoint::save_json`](Checkpoint::save_json)
//!   persist it as a single validated JSON document, and
//!   [`Checkpoint::load_json`](Checkpoint::load_json) restores it
//!   bit-identically on the whole inference surface;
//! * [`ZscModel::freeze`] (or [`Checkpoint::into_frozen`]) produces a
//!   [`FrozenModel`] — a cheaply clonable, `Send + Sync` immutable view
//!   that any number of threads score against without copying weights;
//! * the `serve` crate turns that frozen view into an online service
//!   (micro-batched query serving, live class registration, crash-safe
//!   durability, a TCP front-end) — see `docs/architecture.md` at the
//!   repository root for the full data-flow picture.
//!
//! ```
//! use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
//! use hdc_zsc::{Checkpoint, ModelConfig, Pipeline, TrainConfig};
//!
//! let data = CubLikeDataset::generate(&DatasetConfig::tiny(1));
//! let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast());
//! let (_outcome, model) = pipeline.run_returning_model(&data, SplitKind::Zs, 1);
//! let checkpoint = Checkpoint::capture(&model, data.schema());
//! // later, in the serving process: load into the immutable view
//! let frozen = checkpoint.into_frozen(data.schema()).expect("schema matches");
//! let _embeddings = frozen.embed_images(&data.features_and_labels(
//!     data.split(SplitKind::Zs).eval_classes()).0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod attribute_encoder;
pub mod checkpoint;
pub mod config;
pub mod eval;
pub mod frozen;
pub mod image_encoder;
pub mod model;
pub mod params;
pub mod pipeline;
pub mod train;

pub use attribute_encoder::{
    AttributeEncoder, AttributeEncoderKind, HdcAttributeEncoder, MlpAttributeEncoder,
};
pub use checkpoint::{
    Checkpoint, CheckpointDelta, CheckpointError, SchemaFingerprint, StreamCheckpoint,
    CHECKPOINT_FORMAT_VERSION, CHECKPOINT_LEGACY_FORMAT_VERSION,
};
pub use config::{ModelConfig, TrainConfig};
pub use eval::{
    evaluate_attribute_extraction, evaluate_gzsl, evaluate_zsc, AttributeExtractionReport,
    GzslReport, SimilarityCalibration, SimilarityCalibrator, ZscReport,
};
pub use frozen::FrozenModel;
pub use image_encoder::ImageEncoder;
pub use model::ZscModel;
pub use params::ParameterBreakdown;
pub use pipeline::{stratified_nozs_split, Pipeline, PipelineOutcome};
pub use train::{AttributeExtractionTrainer, TrainingHistory, ZscTrainer};
