//! The image encoder `γ(·)`: a frozen (simulated) backbone plus an optional
//! trainable FC projection to the shared embedding dimension.

use dataset::BackboneKind;
use nn::{init::Init, Layer, Linear, ParamTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{de, DeError, Deserialize, Serialize, Value};
use tensor::Matrix;

/// The image encoder of the paper: backbone features (already extracted by
/// the `dataset` crate's simulated backbone) followed by an optional FC
/// projection `d' → d`.
///
/// Only the FC projection is trainable; the backbone stays frozen in phases
/// II and III, exactly as in Fig. 2/3 of the paper.
///
/// # Example
///
/// ```
/// use dataset::BackboneKind;
/// use hdc_zsc::ImageEncoder;
/// use tensor::Matrix;
///
/// let mut encoder = ImageEncoder::new(BackboneKind::ResNet50, 2048, Some(1536), 0);
/// let features = Matrix::ones(4, 2048);
/// let embeddings = encoder.forward(&features, false);
/// assert_eq!(embeddings.shape(), (4, 1536));
/// ```
#[derive(Debug, Clone)]
pub struct ImageEncoder {
    backbone: BackboneKind,
    feature_dim: usize,
    projection: Option<Linear>,
}

/// Checkpoint format: backbone kind, feature width and the (optional) FC
/// projection weights.
impl Serialize for ImageEncoder {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("backbone".to_string(), self.backbone.to_value()),
            ("feature_dim".to_string(), self.feature_dim.to_value()),
            ("projection".to_string(), self.projection.to_value()),
        ])
    }
}

impl Deserialize for ImageEncoder {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "ImageEncoder")?;
        let backbone: BackboneKind = de::field(entries, "backbone", "ImageEncoder")?;
        let feature_dim: usize = de::field(entries, "feature_dim", "ImageEncoder")?;
        let projection: Option<Linear> = de::field(entries, "projection", "ImageEncoder")?;
        if feature_dim == 0 {
            return Err(
                DeError::new("feature dimensionality must be positive").in_field("ImageEncoder")
            );
        }
        if let Some(fc) = &projection {
            if fc.in_features() != feature_dim {
                return Err(DeError::new(format!(
                    "projection expects {}-dimensional features, encoder declares {feature_dim}",
                    fc.in_features()
                ))
                .in_field("ImageEncoder"));
            }
        }
        Ok(Self {
            backbone,
            feature_dim,
            projection,
        })
    }
}

impl ImageEncoder {
    /// Creates an image encoder for `backbone` features of width
    /// `feature_dim`. With `projection_dim = Some(d)` an FC layer projects to
    /// `d`; with `None` the features are used directly (and the embedding
    /// dimension equals `feature_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `feature_dim == 0` or `projection_dim == Some(0)`.
    pub fn new(
        backbone: BackboneKind,
        feature_dim: usize,
        projection_dim: Option<usize>,
        seed: u64,
    ) -> Self {
        assert!(feature_dim > 0, "feature dimensionality must be positive");
        let projection = projection_dim.map(|d| {
            assert!(d > 0, "projection dimensionality must be positive");
            let mut rng = StdRng::seed_from_u64(seed);
            Linear::new(feature_dim, d, Init::XavierUniform, &mut rng)
        });
        Self {
            backbone,
            feature_dim,
            projection,
        }
    }

    /// The backbone architecture this encoder sits on.
    pub fn backbone(&self) -> BackboneKind {
        self.backbone
    }

    /// Width of the incoming backbone features (`d'`).
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Output embedding dimensionality `d` (the projection width, or the
    /// feature width if no projection is used).
    pub fn embedding_dim(&self) -> usize {
        self.projection
            .as_ref()
            .map_or(self.feature_dim, Linear::out_features)
    }

    /// Whether the encoder has a trainable FC projection.
    pub fn has_projection(&self) -> bool {
        self.projection.is_some()
    }

    /// Immutable inference forward: maps backbone features (`B×d'`) to
    /// embeddings (`B×d`) through `&self`, caching nothing. Bit-identical to
    /// [`ImageEncoder::forward`]; this is the path a shared
    /// [`FrozenModel`](crate::FrozenModel) serves queries through.
    ///
    /// # Panics
    ///
    /// Panics if `features.cols() != self.feature_dim()`.
    pub fn infer(&self, features: &Matrix) -> Matrix {
        assert_eq!(
            features.cols(),
            self.feature_dim,
            "expected {}-dimensional backbone features, got {}",
            self.feature_dim,
            features.cols()
        );
        match &self.projection {
            Some(fc) => fc.infer(features),
            None => features.clone(),
        }
    }

    /// Maps backbone features (`B×d'`) to embeddings (`B×d`). With `train`
    /// set, activations are cached for [`ImageEncoder::backward`];
    /// inference calls delegate to [`ImageEncoder::infer`].
    ///
    /// # Panics
    ///
    /// Panics if `features.cols() != self.feature_dim()`.
    pub fn forward(&mut self, features: &Matrix, train: bool) -> Matrix {
        if !train {
            return self.infer(features);
        }
        assert_eq!(
            features.cols(),
            self.feature_dim,
            "expected {}-dimensional backbone features, got {}",
            self.feature_dim,
            features.cols()
        );
        match &mut self.projection {
            Some(fc) => fc.forward_train(features),
            None => features.clone(),
        }
    }

    /// Back-propagates the gradient of the loss with respect to the
    /// embeddings into the FC projection (a no-op without a projection, since
    /// the backbone is frozen either way).
    pub fn backward(&mut self, grad_embeddings: &Matrix) {
        if let Some(fc) = &mut self.projection {
            let _ = fc.backward(grad_embeddings);
        }
    }

    /// Number of trainable parameters (the FC projection only).
    pub fn num_trainable_params(&self) -> usize {
        self.projection.as_ref().map_or(0, Layer::num_params)
    }

    /// Visits the trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor)) {
        if let Some(fc) = &mut self.projection {
            fc.visit_params(f);
        }
    }

    /// Read-only visitation of the trainable parameters, in the same order
    /// as [`ImageEncoder::visit_params`].
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor)) {
        if let Some(fc) = &self.projection {
            fc.visit_params_ref(f);
        }
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        if let Some(fc) = &mut self.projection {
            fc.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_changes_embedding_dim() {
        let mut with_fc = ImageEncoder::new(BackboneKind::ResNet50, 128, Some(64), 1);
        assert!(with_fc.has_projection());
        assert_eq!(with_fc.embedding_dim(), 64);
        assert_eq!(with_fc.feature_dim(), 128);
        assert_eq!(with_fc.backbone(), BackboneKind::ResNet50);
        assert_eq!(with_fc.num_trainable_params(), 128 * 64 + 64);
        let out = with_fc.forward(&Matrix::ones(3, 128), false);
        assert_eq!(out.shape(), (3, 64));
    }

    #[test]
    fn identity_encoder_passes_features_through() {
        let mut plain = ImageEncoder::new(BackboneKind::ResNet101, 96, None, 1);
        assert!(!plain.has_projection());
        assert_eq!(plain.embedding_dim(), 96);
        assert_eq!(plain.num_trainable_params(), 0);
        let x = Matrix::from_rows(&[vec![0.5; 96]]);
        let out = plain.forward(&x, true);
        assert_eq!(out, x);
        // backward must be a no-op (no panic).
        plain.backward(&Matrix::ones(1, 96));
        plain.zero_grad();
        let mut visits = 0;
        plain.visit_params(&mut |_| visits += 1);
        assert_eq!(visits, 0);
    }

    #[test]
    fn backward_accumulates_projection_gradients() {
        let mut enc = ImageEncoder::new(BackboneKind::ResNet50, 16, Some(8), 2);
        let x = Matrix::ones(2, 16);
        let out = enc.forward(&x, true);
        enc.zero_grad();
        enc.backward(&out);
        let mut grad_norm = 0.0;
        enc.visit_params(&mut |p| grad_norm += p.grad_norm());
        assert!(grad_norm > 0.0);
        enc.zero_grad();
        let mut grad_norm_after = 0.0;
        enc.visit_params(&mut |p| grad_norm_after += p.grad_norm());
        assert_eq!(grad_norm_after, 0.0);
    }

    #[test]
    fn forward_is_deterministic_in_seed() {
        let mut a = ImageEncoder::new(BackboneKind::ResNet50, 32, Some(16), 3);
        let mut b = ImageEncoder::new(BackboneKind::ResNet50, 32, Some(16), 3);
        let x = Matrix::ones(1, 32);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    #[should_panic(expected = "expected 32-dimensional backbone features")]
    fn wrong_feature_width_panics() {
        let mut enc = ImageEncoder::new(BackboneKind::ResNet50, 32, Some(16), 4);
        let _ = enc.forward(&Matrix::ones(1, 64), false);
    }
}
