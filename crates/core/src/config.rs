//! Model and training configuration.

use crate::attribute_encoder::AttributeEncoderKind;
use dataset::BackboneKind;
use serde::{Deserialize, Serialize};

/// Architecture configuration of an HDC-ZSC model.
///
/// The defaults match the paper's preferred configuration: a ResNet50
/// backbone with an FC projection to `d = 1536` and the stationary HDC
/// attribute encoder (Table II, row 2).
///
/// # Example
///
/// ```
/// use hdc_zsc::ModelConfig;
///
/// let cfg = ModelConfig::paper_default();
/// assert_eq!(cfg.embedding_dim, 1536);
/// assert!(cfg.use_projection);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Backbone architecture (parameter accounting and feature simulation).
    pub backbone: BackboneKind,
    /// Whether an FC projection maps backbone features to `embedding_dim`.
    /// Without it the raw backbone features are used directly (Table II rows
    /// "ResNet50"/"ResNet101" where pre-training stage II is skipped).
    pub use_projection: bool,
    /// Shared embedding dimensionality `d`.
    pub embedding_dim: usize,
    /// Attribute encoder variant (stationary HDC codebooks vs trainable MLP).
    pub attribute_encoder: AttributeEncoderKind,
    /// Hidden width of the trainable-MLP attribute encoder (ignored for HDC).
    pub mlp_hidden_dim: usize,
    /// Initial value of the learnable temperature `K`.
    pub temperature: f32,
    /// Whether the temperature is trainable.
    pub learnable_temperature: bool,
    /// Seed for the stationary codebooks / MLP initialisation.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's preferred configuration: ResNet50 + FC, `d = 1536`, HDC
    /// attribute encoder.
    pub fn paper_default() -> Self {
        Self {
            backbone: BackboneKind::ResNet50,
            use_projection: true,
            embedding_dim: 1536,
            attribute_encoder: AttributeEncoderKind::Hdc,
            mlp_hidden_dim: 1024,
            temperature: 0.07,
            learnable_temperature: true,
            seed: 0,
        }
    }

    /// The paper's *Trainable-MLP* variant: same image encoder, 2-layer MLP
    /// attribute encoder.
    pub fn trainable_mlp() -> Self {
        Self {
            attribute_encoder: AttributeEncoderKind::TrainableMlp,
            ..Self::paper_default()
        }
    }

    /// A small configuration for tests (64-dimensional embeddings).
    pub fn tiny() -> Self {
        Self {
            embedding_dim: 64,
            mlp_hidden_dim: 32,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different embedding dimensionality.
    #[must_use]
    pub fn with_embedding_dim(mut self, d: usize) -> Self {
        self.embedding_dim = d;
        self
    }

    /// Returns a copy with/without the FC projection.
    #[must_use]
    pub fn with_projection(mut self, use_projection: bool) -> Self {
        self.use_projection = use_projection;
        self
    }

    /// Returns a copy with a different backbone.
    #[must_use]
    pub fn with_backbone(mut self, backbone: BackboneKind) -> Self {
        self.backbone = backbone;
        self
    }

    /// Returns a copy with a different attribute encoder kind.
    #[must_use]
    pub fn with_attribute_encoder(mut self, kind: AttributeEncoderKind) -> Self {
        self.attribute_encoder = kind;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Hyper-parameters of the phase-II / phase-III training loops.
///
/// Defaults follow §IV-A and Fig. 5: AdamW with default moments, cosine
/// annealing, ~10 epochs, batch size 16.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Maximum positive-class weight for the phase-II weighted BCE.
    pub max_pos_weight: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's best hyper-parameter combination (Fig. 5): ~10 epochs,
    /// batch 16, learning rate 1e-3, weight decay 1e-4.
    pub fn paper_default() -> Self {
        Self {
            epochs: 10,
            batch_size: 16,
            learning_rate: 1e-3,
            weight_decay: 1e-4,
            max_pos_weight: 20.0,
            seed: 0,
        }
    }

    /// A fast configuration for unit tests and examples.
    pub fn fast() -> Self {
        Self {
            epochs: 4,
            batch_size: 32,
            learning_rate: 3e-3,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different epoch count.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with a different batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns a copy with a different learning rate.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Returns a copy with a different weight decay.
    #[must_use]
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Returns a copy with a different shuffling seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_ii_preferred_row() {
        let cfg = ModelConfig::paper_default();
        assert_eq!(cfg.backbone, BackboneKind::ResNet50);
        assert!(cfg.use_projection);
        assert_eq!(cfg.embedding_dim, 1536);
        assert_eq!(cfg.attribute_encoder, AttributeEncoderKind::Hdc);
        assert_eq!(ModelConfig::default(), cfg);
    }

    #[test]
    fn builders_compose() {
        let cfg = ModelConfig::paper_default()
            .with_embedding_dim(2048)
            .with_projection(false)
            .with_backbone(BackboneKind::ResNet101)
            .with_attribute_encoder(AttributeEncoderKind::TrainableMlp)
            .with_seed(5);
        assert_eq!(cfg.embedding_dim, 2048);
        assert!(!cfg.use_projection);
        assert_eq!(cfg.backbone, BackboneKind::ResNet101);
        assert_eq!(cfg.attribute_encoder, AttributeEncoderKind::TrainableMlp);
        assert_eq!(cfg.seed, 5);
    }

    #[test]
    fn train_config_defaults_match_fig5_optimum() {
        let cfg = TrainConfig::paper_default();
        assert_eq!(cfg.epochs, 10);
        assert_eq!(cfg.batch_size, 16);
        assert!((cfg.learning_rate - 1e-3).abs() < 1e-9);
        assert_eq!(TrainConfig::default(), cfg);
        let fast = TrainConfig::fast()
            .with_epochs(2)
            .with_batch_size(8)
            .with_learning_rate(0.01)
            .with_weight_decay(0.0)
            .with_seed(3);
        assert_eq!(fast.epochs, 2);
        assert_eq!(fast.batch_size, 8);
        assert_eq!(fast.seed, 3);
    }
}
