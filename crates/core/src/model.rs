//! The assembled HDC-ZSC model: image encoder + attribute encoder +
//! similarity kernel + temperature.

use crate::attribute_encoder::{AttributeEncoder, AttributeEncoderKind, HdcAttributeEncoder};
use crate::config::ModelConfig;
use crate::image_encoder::ImageEncoder;
use dataset::AttributeSchema;
use engine::{PackedClassMemory, Pool, RoutedClassMemory, RoutedConfig, ShardedClassMemory};
use nn::{CosineSimilarity, ParamTensor, TemperatureScale};
use serde::{de, DeError, Deserialize, Serialize, Value};
use tensor::Matrix;

/// A complete zero-shot classification model in the architecture of Fig. 1:
/// `γ(·)` (image encoder), `ϕ(·)` (attribute encoder) and the cosine
/// similarity kernel with learnable temperature.
///
/// The same model object supports both tasks of the paper:
///
/// * **attribute extraction** (phase II): [`ZscModel::attribute_logits`]
///   compares image embeddings against the stationary attribute dictionary
///   `B` (312 rows);
/// * **zero-shot classification** (phase III and inference):
///   [`ZscModel::class_logits`] compares image embeddings against class
///   embeddings `ϕ(A) = A × B` (or the trainable-MLP encoding of `A`).
///
/// # Inference vs. training receivers
///
/// Every inference entry point — [`ZscModel::embed_images`],
/// [`ZscModel::attribute_logits`], [`ZscModel::class_logits`],
/// [`ZscModel::predict`], the packed/sharded class-memory exports — takes
/// `&self`: the forward passes cache nothing, so a model wrapped in a
/// [`FrozenModel`](crate::FrozenModel) can serve any number of concurrent
/// readers without a single deep copy. The `&mut self` training handles
/// ([`ZscModel::attribute_logits_train`], [`ZscModel::class_logits_train`],
/// the `backward_*` pair, `visit_params`) stay with the trainers and produce
/// bit-identical forward values.
///
/// # Example
///
/// ```
/// use dataset::AttributeSchema;
/// use hdc_zsc::{ModelConfig, ZscModel};
/// use tensor::Matrix;
///
/// let schema = AttributeSchema::cub200();
/// let model = ZscModel::new(&ModelConfig::tiny(), &schema, 64);
/// let features = Matrix::ones(2, 64);
/// let class_attributes = Matrix::ones(5, 312);
/// // Inference needs only `&self` — the model can be shared as-is.
/// let logits = model.class_logits(&features, &class_attributes);
/// assert_eq!(logits.shape(), (2, 5));
/// ```
#[derive(Debug, Clone)]
pub struct ZscModel {
    config: ModelConfig,
    image_encoder: ImageEncoder,
    attribute_encoder: AttributeEncoder,
    /// Stationary dictionary used by the attribute-extraction task. For the
    /// HDC encoder this is exactly the encoder's dictionary; the
    /// trainable-MLP variant still pre-trains against an HDC dictionary in
    /// phase II (the MLP only replaces the *class* encoder in phase III).
    phase2_dictionary: Matrix,
    kernel: CosineSimilarity,
    temperature: TemperatureScale,
    /// Thread pool used by the batched inference (`train = false`) scoring
    /// paths; similarities are bit-identical for every pool width.
    inference_pool: Pool,
}

impl ZscModel {
    /// Builds a model for backbone features of width `feature_dim`.
    ///
    /// The embedding dimension is `config.embedding_dim` when the FC
    /// projection is enabled, otherwise `feature_dim` (Table II rows without
    /// the FC layer).
    pub fn new(config: &ModelConfig, schema: &AttributeSchema, feature_dim: usize) -> Self {
        let embedding_dim = if config.use_projection {
            config.embedding_dim
        } else {
            feature_dim
        };
        let image_encoder = ImageEncoder::new(
            config.backbone,
            feature_dim,
            config.use_projection.then_some(embedding_dim),
            config.seed,
        );
        let attribute_encoder = AttributeEncoder::build(
            config.attribute_encoder,
            schema,
            embedding_dim,
            config.mlp_hidden_dim,
            config.seed.wrapping_add(1),
        );
        let phase2_dictionary = match &attribute_encoder {
            AttributeEncoder::Hdc(enc) => enc.dictionary().clone(),
            AttributeEncoder::Mlp(_) => {
                HdcAttributeEncoder::new(schema, embedding_dim, config.seed.wrapping_add(1))
                    .dictionary()
                    .clone()
            }
        };
        let temperature = if config.learnable_temperature {
            TemperatureScale::new(config.temperature)
        } else {
            TemperatureScale::fixed(config.temperature)
        };
        Self {
            config: *config,
            image_encoder,
            attribute_encoder,
            phase2_dictionary,
            kernel: CosineSimilarity::new(),
            temperature,
            inference_pool: Pool::auto(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The image encoder `γ(·)`.
    pub fn image_encoder(&self) -> &ImageEncoder {
        &self.image_encoder
    }

    /// The attribute encoder `ϕ(·)`.
    pub fn attribute_encoder(&self) -> &AttributeEncoder {
        &self.attribute_encoder
    }

    /// Mutable access to the attribute encoder (used by the trainers).
    pub fn attribute_encoder_mut(&mut self) -> &mut AttributeEncoder {
        &mut self.attribute_encoder
    }

    /// The attribute-encoder variant in use.
    pub fn attribute_encoder_kind(&self) -> AttributeEncoderKind {
        self.attribute_encoder.kind()
    }

    /// Embedding dimensionality `d`.
    pub fn embedding_dim(&self) -> usize {
        self.image_encoder.embedding_dim()
    }

    /// Current value of the temperature `K`.
    pub fn temperature(&self) -> f32 {
        self.temperature_scale().k()
    }

    fn temperature_scale(&self) -> &TemperatureScale {
        &self.temperature
    }

    /// The stationary attribute dictionary used for attribute extraction.
    pub fn phase2_dictionary(&self) -> &Matrix {
        &self.phase2_dictionary
    }

    /// Image embeddings `γ(X)` for a batch of backbone features, through the
    /// immutable inference forward (`&self`, no caches).
    pub fn embed_images(&self, features: &Matrix) -> Matrix {
        self.image_encoder.infer(features)
    }

    // ------------------------------------------------------------------
    // Attribute extraction (phase II)
    // ------------------------------------------------------------------

    /// Attribute logits `q/K` for a batch of backbone features: the cosine
    /// similarity of every image embedding against every attribute
    /// codevector, scaled by the temperature so it can be consumed by a
    /// BCE-with-logits loss.
    ///
    /// Scored by the batched engine (`engine::dense`), which chunks the
    /// batch across threads and is bit-identical to the serial training
    /// kernel — and to [`ZscModel::attribute_logits_train`].
    pub fn attribute_logits(&self, features: &Matrix) -> Matrix {
        let embeddings = self.image_encoder.infer(features);
        let sims = engine::dense::cosine_scores(
            &embeddings,
            &self.phase2_dictionary,
            &self.inference_pool,
        );
        self.temperature.infer(&sims)
    }

    /// Training-mode variant of [`ZscModel::attribute_logits`]: runs the
    /// differentiable serial kernel and caches activations so
    /// [`ZscModel::backward_attribute`] can follow. Forward values are
    /// bit-identical to the inference path.
    pub fn attribute_logits_train(&mut self, features: &Matrix) -> Matrix {
        let embeddings = self.image_encoder.forward(features, true);
        let sims = self
            .kernel
            .forward(&embeddings, &self.phase2_dictionary, true);
        self.temperature.forward(&sims, true)
    }

    /// Back-propagates a gradient with respect to the attribute logits into
    /// the image encoder (the dictionary is stationary and receives no
    /// update).
    ///
    /// # Panics
    ///
    /// Panics if [`ZscModel::attribute_logits_train`] did not run first.
    pub fn backward_attribute(&mut self, grad_logits: &Matrix) {
        let grad_sims = self.temperature.backward(grad_logits);
        let (grad_embeddings, _grad_dictionary) = self.kernel.backward(&grad_sims);
        self.image_encoder.backward(&grad_embeddings);
    }

    // ------------------------------------------------------------------
    // Zero-shot classification (phase III / inference)
    // ------------------------------------------------------------------

    /// Class logits `cossim(γ(X), ϕ(A)) / K` for a batch of backbone features
    /// and a class-attribute matrix `A ∈ R^{C×α}`.
    ///
    /// Scored by the batched engine (`engine::dense`), which chunks the
    /// batch across [`ZscModel::inference_threads`] threads and is
    /// bit-identical to the serial kernel — and to
    /// [`ZscModel::class_logits_train`].
    pub fn class_logits(&self, features: &Matrix, class_attributes: &Matrix) -> Matrix {
        let embeddings = self.image_encoder.infer(features);
        let class_embeddings = self.attribute_encoder.infer_classes(class_attributes);
        let sims =
            engine::dense::cosine_scores(&embeddings, &class_embeddings, &self.inference_pool);
        self.temperature.infer(&sims)
    }

    /// Training-mode variant of [`ZscModel::class_logits`]: runs the
    /// differentiable [`CosineSimilarity`] kernel and caches activations so
    /// [`ZscModel::backward_class`] can follow. Forward values are
    /// bit-identical to the inference path.
    pub fn class_logits_train(&mut self, features: &Matrix, class_attributes: &Matrix) -> Matrix {
        let embeddings = self.image_encoder.forward(features, true);
        let class_embeddings = self
            .attribute_encoder
            .encode_classes(class_attributes, true);
        let sims = self.kernel.forward(&embeddings, &class_embeddings, true);
        self.temperature.forward(&sims, true)
    }

    /// Number of threads the batched inference path fans out over.
    pub fn inference_threads(&self) -> usize {
        self.inference_pool.threads()
    }

    /// Caps the batched inference path at `threads` threads (clamped to at
    /// least 1). Results are bit-identical for every setting; this only
    /// trades latency against CPU usage.
    pub fn set_inference_threads(&mut self, threads: usize) {
        self.inference_pool = Pool::new(threads);
    }

    /// Packs the sign-binarized class signatures `sign(ϕ(A))` into an
    /// [`engine::PackedClassMemory`], one row per class-attribute row, so
    /// trained models can serve nearest-class queries through the engine's
    /// popcount path. The conversion is lossless with respect to the
    /// binarized signatures.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from `class_attributes.rows()`.
    pub fn packed_class_memory<L, S>(
        &self,
        labels: L,
        class_attributes: &Matrix,
    ) -> PackedClassMemory
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let class_embeddings = self.attribute_encoder.infer_classes(class_attributes);
        PackedClassMemory::from_sign_matrix(labels, &class_embeddings)
    }

    /// Sharded variant of [`ZscModel::packed_class_memory`]: the same
    /// sign-binarized class signatures split across `shards`
    /// [`engine::ShardedClassMemory`] shards, so the serving layer can
    /// register, update, and remove classes incrementally (repacking only
    /// the touched shard) while lookups stay bit-identical to the monolithic
    /// memory for every shard count.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from `class_attributes.rows()` or
    /// `shards == 0`.
    pub fn sharded_class_memory<L, S>(
        &self,
        labels: L,
        class_attributes: &Matrix,
        shards: usize,
    ) -> ShardedClassMemory
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let class_embeddings = self.attribute_encoder.infer_classes(class_attributes);
        ShardedClassMemory::from_sign_matrix(labels, &class_embeddings, shards)
    }

    /// Routed variant of [`ZscModel::packed_class_memory`]: the same
    /// sign-binarized class signatures clustered into a coarse-to-fine
    /// [`engine::RoutedClassMemory`] under `config`, so serving layers with
    /// very large class sets can shortlist a few clusters per query instead
    /// of sweeping every class. With the config's default full probing,
    /// lookups are bit-identical to the monolithic memory; dialling `nprobe`
    /// down trades recall for sub-linear candidate work.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from `class_attributes.rows()`.
    pub fn routed_class_memory<L, S>(
        &self,
        labels: L,
        class_attributes: &Matrix,
        config: RoutedConfig,
    ) -> RoutedClassMemory
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let class_embeddings = self.attribute_encoder.infer_classes(class_attributes);
        RoutedClassMemory::from_sign_matrix(labels, &class_embeddings, config)
    }

    /// Encodes one class-attribute row into its sign-binarized packed class
    /// signature — the row [`ZscModel::sharded_class_memory`] would store for
    /// it. This is the single-class primitive behind serve-time
    /// `register_class`: encoding one new class costs one attribute-encoder
    /// forward instead of re-encoding the whole class set.
    ///
    /// # Panics
    ///
    /// Panics if `attributes.len()` differs from the attribute encoder's
    /// expected width.
    pub fn packed_class_signature(&self, attributes: &[f32]) -> Vec<u64> {
        let row = Matrix::from_rows(&[attributes.to_vec()]);
        let embedding = self.attribute_encoder.infer_classes(&row);
        engine::pack_float_signs(embedding.row(0))
    }

    /// Back-propagates a gradient with respect to the class logits into the
    /// image encoder, the temperature, and (for the trainable-MLP variant)
    /// the attribute encoder.
    ///
    /// # Panics
    ///
    /// Panics if [`ZscModel::class_logits_train`] did not run first.
    pub fn backward_class(&mut self, grad_logits: &Matrix) {
        let grad_sims = self.temperature.backward(grad_logits);
        let (grad_embeddings, grad_class_embeddings) = self.kernel.backward(&grad_sims);
        self.image_encoder.backward(&grad_embeddings);
        self.attribute_encoder.backward(&grad_class_embeddings);
    }

    /// Predicts the class index (into the rows of `class_attributes`) of
    /// every feature row — the `argmax` rule of Eq. (2).
    pub fn predict(&self, features: &Matrix, class_attributes: &Matrix) -> Vec<usize> {
        self.class_logits(features, class_attributes).argmax_rows()
    }

    // ------------------------------------------------------------------
    // Parameter plumbing
    // ------------------------------------------------------------------

    /// Visits every trainable parameter (FC projection, temperature, and the
    /// MLP attribute encoder when present) in a fixed order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor)) {
        self.image_encoder.visit_params(f);
        self.temperature.visit_params(f);
        self.attribute_encoder.visit_params(f);
    }

    /// Read-only visitation of every trainable parameter, in the same fixed
    /// order as [`ZscModel::visit_params`] — parameter accounting through a
    /// shared frozen model.
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor)) {
        self.image_encoder.visit_params_ref(f);
        self.temperature.visit_params_ref(f);
        self.attribute_encoder.visit_params_ref(f);
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.image_encoder.zero_grad();
        self.temperature.zero_grad();
        self.attribute_encoder.zero_grad();
    }

    /// Clamps the temperature after an optimizer step.
    pub fn post_step(&mut self) {
        self.temperature.clamp();
    }

    /// Number of trainable parameters, counted through the read-only
    /// visitation (no `&mut` needed).
    pub fn num_trainable_params(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.len());
        n
    }

    /// Exposes mutable access to the image encoder for the trainers.
    pub fn image_encoder_mut(&mut self) -> &mut ImageEncoder {
        &mut self.image_encoder
    }

    /// Consumes the model into an immutable, cheaply clonable
    /// [`FrozenModel`](crate::FrozenModel) — the `Send + Sync` handle the
    /// serving layer shares across threads without deep-copying weights.
    pub fn freeze(self) -> crate::FrozenModel {
        crate::FrozenModel::new(self)
    }
}

/// Checkpoint format: configuration, both encoders, the phase-II dictionary
/// and the temperature. The similarity kernel's activation cache and the
/// inference thread pool are transient and are rebuilt on load.
impl Serialize for ZscModel {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("config".to_string(), self.config.to_value()),
            ("image_encoder".to_string(), self.image_encoder.to_value()),
            (
                "attribute_encoder".to_string(),
                self.attribute_encoder.to_value(),
            ),
            (
                "phase2_dictionary".to_string(),
                self.phase2_dictionary.to_value(),
            ),
            ("temperature_k".to_string(), self.temperature().to_value()),
            (
                "temperature_learnable".to_string(),
                self.temperature.is_learnable().to_value(),
            ),
        ])
    }
}

impl Deserialize for ZscModel {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "ZscModel")?;
        let config: ModelConfig = de::field(entries, "config", "ZscModel")?;
        let image_encoder: ImageEncoder = de::field(entries, "image_encoder", "ZscModel")?;
        let attribute_encoder: AttributeEncoder =
            de::field(entries, "attribute_encoder", "ZscModel")?;
        let phase2_dictionary: Matrix = de::field(entries, "phase2_dictionary", "ZscModel")?;
        let temperature_k: f32 = de::field(entries, "temperature_k", "ZscModel")?;
        let temperature_learnable: bool = de::field(entries, "temperature_learnable", "ZscModel")?;
        let type_err = |msg: String| DeError::new(msg).in_field("ZscModel");
        let embedding_dim = image_encoder.embedding_dim();
        if attribute_encoder.dim() != embedding_dim {
            return Err(type_err(format!(
                "attribute encoder dim {} does not match the image encoder's {embedding_dim}",
                attribute_encoder.dim()
            )));
        }
        if attribute_encoder.kind() != config.attribute_encoder {
            return Err(type_err(format!(
                "attribute encoder kind {} disagrees with the configuration's {}",
                attribute_encoder.kind(),
                config.attribute_encoder
            )));
        }
        if config.use_projection != image_encoder.has_projection() {
            return Err(type_err(
                "projection flag disagrees between configuration and image encoder".to_string(),
            ));
        }
        if phase2_dictionary.cols() != embedding_dim {
            return Err(type_err(format!(
                "phase-II dictionary width {} does not match embedding dim {embedding_dim}",
                phase2_dictionary.cols()
            )));
        }
        if !(temperature_k.is_finite() && temperature_k > 0.0) {
            return Err(type_err(format!(
                "temperature must be a positive finite value, got {temperature_k}"
            )));
        }
        let temperature = if temperature_learnable {
            TemperatureScale::new(temperature_k)
        } else {
            TemperatureScale::fixed(temperature_k)
        };
        Ok(Self {
            config,
            image_encoder,
            attribute_encoder,
            phase2_dictionary,
            kernel: CosineSimilarity::new(),
            temperature,
            inference_pool: Pool::auto(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> AttributeSchema {
        AttributeSchema::cub200()
    }

    fn tiny_model() -> ZscModel {
        ZscModel::new(&ModelConfig::tiny(), &schema(), 48)
    }

    #[test]
    fn construction_respects_config() {
        let model = tiny_model();
        assert_eq!(model.embedding_dim(), 64);
        assert_eq!(model.attribute_encoder_kind(), AttributeEncoderKind::Hdc);
        assert!((model.temperature() - 0.07).abs() < 1e-6);
        assert_eq!(model.phase2_dictionary().shape(), (312, 64));
        assert!(model.num_trainable_params() > 0);
        assert_eq!(model.config().embedding_dim, 64);
        assert!(model.image_encoder().has_projection());
    }

    #[test]
    fn no_projection_model_uses_feature_dim() {
        let cfg = ModelConfig::tiny().with_projection(false);
        let model = ZscModel::new(&cfg, &schema(), 80);
        assert_eq!(model.embedding_dim(), 80);
        // Trainable params: only the temperature scalar.
        assert_eq!(model.num_trainable_params(), 1);
    }

    #[test]
    fn mlp_variant_shares_phase2_dictionary_with_hdc() {
        let s = schema();
        let hdc_model = ZscModel::new(&ModelConfig::tiny(), &s, 48);
        let mlp_model = ZscModel::new(
            &ModelConfig::tiny().with_attribute_encoder(AttributeEncoderKind::TrainableMlp),
            &s,
            48,
        );
        // Same seed → same stationary dictionary for phase II.
        assert_eq!(hdc_model.phase2_dictionary(), mlp_model.phase2_dictionary());
        assert_eq!(
            mlp_model.attribute_encoder().kind(),
            AttributeEncoderKind::TrainableMlp
        );
    }

    #[test]
    fn logit_shapes() {
        let model = tiny_model();
        let mut rng = StdRng::seed_from_u64(1);
        let features = Matrix::random_uniform(3, 48, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(7, 312, 0.5, &mut rng).map(f32::abs);
        assert_eq!(model.attribute_logits(&features).shape(), (3, 312));
        assert_eq!(
            model.class_logits(&features, &class_attributes).shape(),
            (3, 7)
        );
        assert_eq!(model.predict(&features, &class_attributes).len(), 3);
        assert_eq!(model.embed_images(&features).shape(), (3, 64));
    }

    #[test]
    fn class_backward_accumulates_projection_gradients() {
        let mut model = tiny_model();
        let mut rng = StdRng::seed_from_u64(2);
        let features = Matrix::random_uniform(4, 48, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(5, 312, 0.5, &mut rng).map(f32::abs);
        model.zero_grad();
        let logits = model.class_logits_train(&features, &class_attributes);
        model.backward_class(&Matrix::ones(logits.rows(), logits.cols()));
        let mut grad_norm = 0.0;
        model.visit_params(&mut |p| grad_norm += p.grad_norm());
        assert!(grad_norm > 0.0);
        model.zero_grad();
        let mut after = 0.0;
        model.visit_params(&mut |p| after += p.grad_norm());
        assert_eq!(after, 0.0);
    }

    #[test]
    fn attribute_backward_touches_only_image_encoder_and_temperature() {
        let cfg = ModelConfig::tiny().with_attribute_encoder(AttributeEncoderKind::TrainableMlp);
        let mut model = ZscModel::new(&cfg, &schema(), 48);
        let mut rng = StdRng::seed_from_u64(3);
        let features = Matrix::random_uniform(2, 48, 1.0, &mut rng);
        model.zero_grad();
        let logits = model.attribute_logits_train(&features);
        model.backward_attribute(&Matrix::ones(logits.rows(), logits.cols()));
        // The MLP attribute encoder must have received no gradient.
        let mut mlp_grad = 0.0;
        model
            .attribute_encoder()
            .visit_params_ref(&mut |p| mlp_grad += p.grad_norm());
        assert_eq!(mlp_grad, 0.0);
    }

    #[test]
    fn predictions_are_deterministic() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(4);
        let features = Matrix::random_uniform(5, 48, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(6, 312, 0.5, &mut rng).map(f32::abs);
        let a = ZscModel::new(&ModelConfig::tiny().with_seed(9), &s, 48);
        let b = ZscModel::new(&ModelConfig::tiny().with_seed(9), &s, 48);
        assert_eq!(
            a.predict(&features, &class_attributes),
            b.predict(&features, &class_attributes)
        );
    }

    #[test]
    fn engine_inference_logits_bit_identical_to_training_kernel() {
        let mut rng = StdRng::seed_from_u64(5);
        let features = Matrix::random_uniform(6, 48, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
        let mut model = tiny_model();
        // The training path uses the differentiable serial kernel; the
        // inference path goes through the batched engine. Both must produce
        // the same bits for any thread count.
        let train_logits = model.class_logits_train(&features, &class_attributes);
        for threads in [1usize, 2, 7] {
            model.set_inference_threads(threads);
            assert_eq!(model.inference_threads(), threads);
            let infer_logits = model.class_logits(&features, &class_attributes);
            assert_eq!(
                infer_logits.as_slice(),
                train_logits.as_slice(),
                "threads={threads}"
            );
            let train_attr = model.attribute_logits_train(&features);
            let infer_attr = model.attribute_logits(&features);
            assert_eq!(infer_attr.as_slice(), train_attr.as_slice());
        }
    }

    #[test]
    fn packed_class_memory_serves_signature_lookups() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = tiny_model();
        let class_attributes = Matrix::random_uniform(7, 312, 0.5, &mut rng).map(f32::abs);
        let labels: Vec<String> = (0..7).map(|c| format!("bird{c}")).collect();
        let memory = model.packed_class_memory(labels.clone(), &class_attributes);
        assert_eq!(memory.len(), 7);
        assert_eq!(memory.dim(), model.embedding_dim());
        // Each class's own binarized signature must resolve to that class.
        let class_embeddings = model.attribute_encoder().infer_classes(&class_attributes);
        for (c, label) in labels.iter().enumerate() {
            let query = engine::pack_float_signs(class_embeddings.row(c));
            let (index, _sim) = memory.nearest(&query).expect("non-empty");
            assert_eq!(memory.label(index), label);
        }
    }

    /// The sharded export must hold exactly the monolithic memory's class
    /// signatures, and the per-class signature primitive must reproduce the
    /// rows the bulk export stores.
    #[test]
    fn sharded_class_memory_matches_monolithic_export() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = tiny_model();
        let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
        let labels: Vec<String> = (0..9).map(|c| format!("bird{c}")).collect();
        let mono = model.packed_class_memory(labels.clone(), &class_attributes);
        for shards in [1usize, 2, 3, 7] {
            let sharded = model.sharded_class_memory(labels.clone(), &class_attributes, shards);
            assert_eq!(sharded.len(), mono.len());
            assert_eq!(sharded.num_shards(), shards);
            for (c, label) in labels.iter().enumerate() {
                assert_eq!(
                    sharded.class_words(label).expect("stored"),
                    mono.row_words(c),
                    "shards={shards} label={label}"
                );
                let signature = model.packed_class_signature(class_attributes.row(c));
                assert_eq!(signature, mono.row_words(c), "label={label}");
            }
        }
    }

    /// The routed export must hold exactly the monolithic memory's class
    /// signatures and, probing exhaustively, return the same nearest class
    /// for every signature query — for several cluster counts.
    #[test]
    fn routed_class_memory_matches_monolithic_export() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = tiny_model();
        let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
        let labels: Vec<String> = (0..9).map(|c| format!("bird{c}")).collect();
        let mono = model.packed_class_memory(labels.clone(), &class_attributes);
        for clusters in [1usize, 3] {
            let routed = model.routed_class_memory(
                labels.clone(),
                &class_attributes,
                engine::RoutedConfig {
                    clusters,
                    ..engine::RoutedConfig::default()
                },
            );
            assert_eq!(routed.len(), mono.len());
            assert_eq!(routed.num_clusters(), clusters);
            assert!(routed.probes_exhaustively());
            for (c, label) in labels.iter().enumerate() {
                assert_eq!(
                    routed.class_words(label).expect("stored"),
                    mono.row_words(c),
                    "clusters={clusters} label={label}"
                );
                let query = mono.row_words(c).to_vec();
                let (nearest, _sim) = routed.nearest(&query).expect("non-empty");
                let (mono_index, _sim) = mono.nearest(&query).expect("non-empty");
                assert_eq!(nearest, mono.label(mono_index), "clusters={clusters}");
            }
        }
    }

    #[test]
    fn post_step_keeps_temperature_positive() {
        let mut model = tiny_model();
        // Force the temperature negative as an optimizer might, then clamp.
        model.visit_params(&mut |p| {
            if p.shape() == (1, 1) {
                p.values.set(0, 0, -1.0);
            }
        });
        model.post_step();
        assert!(model.temperature() > 0.0);
    }
}
