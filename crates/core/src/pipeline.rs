//! The full three-phase pipeline: (simulated) phase-I backbone → phase-II
//! attribute extraction → phase-III zero-shot fine-tuning → evaluation.

use crate::config::{ModelConfig, TrainConfig};
use crate::eval::{
    evaluate_attribute_extraction, evaluate_zsc, AttributeExtractionReport, ZscReport,
};
use crate::model::ZscModel;
use crate::params::ParameterBreakdown;
use crate::train::{AttributeExtractionTrainer, TrainingHistory, ZscTrainer};
use dataset::{CubLikeDataset, SplitKind};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Everything a single training/evaluation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// Zero-shot (or noZS) classification results on the evaluation side.
    pub zsc: ZscReport,
    /// Attribute-extraction results on the evaluation side.
    pub attribute_extraction: AttributeExtractionReport,
    /// Parameter accounting of the trained model.
    pub params: ParameterBreakdown,
    /// Phase-II loss curve.
    pub phase2_history: TrainingHistory,
    /// Phase-III loss curve.
    pub phase3_history: TrainingHistory,
}

/// Orchestrates the paper's training recipe end to end for one seed.
///
/// # Example
///
/// ```
/// use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
/// use hdc_zsc::{ModelConfig, Pipeline, TrainConfig};
///
/// let data = CubLikeDataset::generate(&DatasetConfig::tiny(2));
/// let outcome = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast())
///     .run(&data, SplitKind::Zs, 0);
/// assert!(outcome.zsc.top1 >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    model_config: ModelConfig,
    train_config: TrainConfig,
    run_phase2: bool,
}

impl Pipeline {
    /// Creates a pipeline with the given model and training configurations.
    pub fn new(model_config: ModelConfig, train_config: TrainConfig) -> Self {
        Self {
            model_config,
            train_config,
            run_phase2: true,
        }
    }

    /// Disables phase-II pre-training (Table II rows without the FC layer
    /// skip stage II).
    #[must_use]
    pub fn without_phase2(mut self) -> Self {
        self.run_phase2 = false;
        self
    }

    /// The model configuration.
    pub fn model_config(&self) -> &ModelConfig {
        &self.model_config
    }

    /// The training configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train_config
    }

    /// Runs the full pipeline on `data` under the given split protocol and
    /// seed, returning the evaluation reports.
    ///
    /// For the zero-shot splits (`Zs`, `Validation`) the model trains on the
    /// split's training classes and is evaluated on the *disjoint* evaluation
    /// classes. For `NoZs` the instances of the (shared) classes are divided
    /// 75/25 into train and test — stratified within each class, see
    /// [`stratified_nozs_split`] — matching the supervised protocol used by
    /// the Table I baselines.
    ///
    /// This is a thin wrapper over [`Pipeline::run_returning_model`] that
    /// drops the trained model.
    pub fn run(&self, data: &CubLikeDataset, split_kind: SplitKind, seed: u64) -> PipelineOutcome {
        self.run_returning_model(data, split_kind, seed).0
    }

    /// Runs the pipeline and additionally returns the trained model (for
    /// checkpointing, serving, or extra analyses).
    ///
    /// The returned model is the *exact* object that produced the outcome —
    /// nothing is retrained, so its logits on the evaluation side reproduce
    /// `outcome.zsc` bit for bit. (An earlier revision retrained a second
    /// model here, which on the `NoZs` split trained on all instances of the
    /// shared classes instead of the 75% partition and therefore returned a
    /// model that did *not* match the reported outcome.)
    pub fn run_returning_model(
        &self,
        data: &CubLikeDataset,
        split_kind: SplitKind,
        seed: u64,
    ) -> (PipelineOutcome, ZscModel) {
        let split = data.split(split_kind);
        let model_config = self
            .model_config
            .with_seed(self.model_config.seed.wrapping_add(seed));
        let train_config = self
            .train_config
            .with_seed(self.train_config.seed.wrapping_add(seed));
        let mut model = ZscModel::new(&model_config, data.schema(), data.config().feature_dim);

        // Assemble train/eval instance sets.
        let (train_x, train_labels, train_attr, eval_x, eval_labels, eval_attr) =
            if split.is_zero_shot() {
                let (train_x, train_labels) = data.features_and_labels(split.train_classes());
                let (_, train_attr) = data.features_and_attributes(split.train_classes());
                let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
                let (_, eval_attr) = data.features_and_attributes(split.eval_classes());
                (
                    train_x,
                    train_labels,
                    train_attr,
                    eval_x,
                    eval_labels,
                    eval_attr,
                )
            } else {
                // noZS: split the instances of the shared classes 75/25,
                // stratified within each class.
                let (train_idx, eval_idx) = stratified_nozs_split(data, split.train_classes());
                (
                    data.features().select_rows(&train_idx),
                    data.instances().labels(&train_idx),
                    data.instances().attribute_targets(&train_idx),
                    data.features().select_rows(&eval_idx),
                    data.instances().labels(&eval_idx),
                    data.instances().attribute_targets(&eval_idx),
                )
            };

        // Phase II: attribute extraction pre-training on the training side.
        let phase2_history = if self.run_phase2 && model.image_encoder().has_projection() {
            AttributeExtractionTrainer::new(train_config).train(&mut model, &train_x, &train_attr)
        } else {
            TrainingHistory::default()
        };

        // Phase III: classification fine-tuning against the seen classes.
        let train_local = CubLikeDataset::to_local_labels(&train_labels, split.train_classes());
        let train_class_attr = data.class_attribute_matrix(split.train_classes());
        let phase3_history = ZscTrainer::new(train_config).train(
            &mut model,
            &train_x,
            &train_local,
            &train_class_attr,
        );

        // Evaluation on the held-out side (unseen classes for ZS splits).
        let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
        let eval_class_attr = data.class_attribute_matrix(split.eval_classes());
        let zsc = evaluate_zsc(&model, &eval_x, &eval_local, &eval_class_attr);
        let attribute_extraction =
            evaluate_attribute_extraction(&model, &eval_x, &eval_attr, data.schema());
        let params = ParameterBreakdown::of(&model);
        let outcome = PipelineOutcome {
            zsc,
            attribute_extraction,
            params,
            phase2_history,
            phase3_history,
        };
        (outcome, model)
    }

    /// Runs the pipeline over several seeds, returning one outcome per seed
    /// (the five-trial µ ± σ protocol of §IV-A).
    pub fn run_seeds(
        &self,
        data: &CubLikeDataset,
        split_kind: SplitKind,
        seeds: &[u64],
    ) -> Vec<PipelineOutcome> {
        seeds
            .iter()
            .map(|&s| self.run(data, split_kind, s))
            .collect()
    }

    /// Convenience: mean top-1 accuracy over a set of outcomes.
    pub fn mean_top1(outcomes: &[PipelineOutcome]) -> f32 {
        if outcomes.is_empty() {
            return 0.0;
        }
        outcomes.iter().map(|o| o.zsc.top1).sum::<f32>() / outcomes.len() as f32
    }
}

/// The deterministic 75/25 instance split used by the `NoZs` protocol,
/// stratified **within each class**: every class keeps every 4th of its own
/// instances (per-class positions `3, 7, 11, …`) for evaluation, and a class
/// with at least two instances but no such position contributes its last
/// instance instead, so no class is left without evaluation coverage.
///
/// Returns `(train_indices, eval_indices)`, both in global instance order.
///
/// (An earlier revision assigned every 4th *globally enumerated* index to
/// evaluation, which is not stratified: when `images_per_class % 4 != 0` the
/// holdout drifted across class boundaries, giving classes uneven — possibly
/// zero — evaluation coverage.)
pub fn stratified_nozs_split(data: &CubLikeDataset, classes: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let indices = data.instance_indices(classes);
    let labels = data.instances().labels(&indices);
    // Count instances per class so the small-class fallback knows each
    // class's last position up front.
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for &label in &labels {
        *counts.entry(label).or_insert(0) += 1;
    }
    let mut positions: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut train = Vec::with_capacity(indices.len());
    let mut eval = Vec::with_capacity(indices.len() / 4 + counts.len());
    for (&idx, &label) in indices.iter().zip(&labels) {
        let n = counts[&label];
        let pos = positions.entry(label).or_insert(0);
        let regular_pick = *pos % 4 == 3;
        // Classes too small for a regular pick (2 or 3 instances) hold out
        // their last instance; singleton classes must stay in training.
        let fallback_pick = (2..4).contains(&n) && *pos == n - 1;
        if regular_pick || fallback_pick {
            eval.push(idx);
        } else {
            train.push(idx);
        }
        *pos += 1;
    }
    (train, eval)
}

/// Splits a feature/label set into the matrices needed to call the trainers
/// directly (exposed for the benches and examples that bypass [`Pipeline`]).
pub fn localise_labels(labels: &[usize], classes: &[usize]) -> (Vec<usize>, usize) {
    (
        CubLikeDataset::to_local_labels(labels, classes),
        classes.len(),
    )
}

/// Convenience for harnesses: stack outcomes' top-1 accuracies as a vector.
pub fn top1_samples(outcomes: &[PipelineOutcome]) -> Vec<f32> {
    outcomes.iter().map(|o| o.zsc.top1 * 100.0).collect()
}

/// Re-export of the class-attribute selection used by examples.
pub fn class_attribute_matrix(data: &CubLikeDataset, classes: &[usize]) -> Matrix {
    data.class_attribute_matrix(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::DatasetConfig;

    #[test]
    fn zero_shot_pipeline_beats_chance() {
        // Slightly larger than the default tiny fixture: zero-shot transfer
        // needs a little more data/dimensionality than the unit-test minimum.
        let mut config = DatasetConfig::tiny(21);
        config.num_classes = 24;
        config.images_per_class = 14;
        config.feature_dim = 128;
        let data = CubLikeDataset::generate(&config);
        let pipeline = Pipeline::new(
            ModelConfig::tiny().with_embedding_dim(128),
            TrainConfig::fast().with_epochs(16),
        );
        let outcome = pipeline.run(&data, SplitKind::Zs, 0);
        let split = data.split(SplitKind::Zs);
        let chance = 1.0 / split.eval_classes().len() as f32;
        assert!(
            outcome.zsc.top1 > 1.4 * chance,
            "zero-shot top-1 {} vs chance {}",
            outcome.zsc.top1,
            chance
        );
        assert!(outcome.phase2_history.epochs() > 0);
        assert!(outcome.phase3_history.epochs() > 0);
        assert_eq!(outcome.attribute_extraction.per_group.len(), 28);
        assert!(outcome.params.total() > 0);
    }

    #[test]
    fn nozs_pipeline_splits_instances() {
        let data = CubLikeDataset::generate(&DatasetConfig::tiny(22));
        let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(8));
        let outcome = pipeline.run(&data, SplitKind::NoZs, 0);
        let split = data.split(SplitKind::NoZs);
        let (train_idx, eval_idx) = stratified_nozs_split(&data, split.train_classes());
        let total = data.instance_indices(split.train_classes()).len();
        assert_eq!(train_idx.len() + eval_idx.len(), total);
        assert_eq!(outcome.zsc.num_samples, eval_idx.len());
        // 6 images per class → every class holds out exactly one instance.
        assert_eq!(eval_idx.len(), split.train_classes().len());
        assert!(outcome.zsc.top1 > 0.0);
    }

    /// Pins the stratified 75/25 rule: every class is held out proportionally
    /// (per-class positions `3, 7, 11, …`), and classes with 2–3 instances
    /// still contribute exactly one evaluation sample instead of zero.
    #[test]
    fn nozs_split_is_stratified_per_class() {
        for (images_per_class, expected_eval_per_class) in
            [(2usize, 1usize), (3, 1), (5, 1), (8, 2)]
        {
            let mut config = DatasetConfig::tiny(26);
            config.images_per_class = images_per_class;
            let data = CubLikeDataset::generate(&config);
            let split = data.split(SplitKind::NoZs);
            let (train_idx, eval_idx) = stratified_nozs_split(&data, split.train_classes());

            // The two sides partition the class's instances.
            let mut all: Vec<usize> = train_idx.iter().chain(&eval_idx).copied().collect();
            all.sort_unstable();
            let mut expected = data.instance_indices(split.train_classes());
            expected.sort_unstable();
            assert_eq!(all, expected, "images_per_class={images_per_class}");

            // Per-class evaluation coverage is uniform and never zero.
            let eval_labels = data.instances().labels(&eval_idx);
            for &class in split.train_classes() {
                let count = eval_labels.iter().filter(|&&l| l == class).count();
                assert_eq!(
                    count, expected_eval_per_class,
                    "class {class} with {images_per_class} images"
                );
            }
        }
    }

    /// Regression test for the `run_returning_model` bug: the returned model
    /// must be the exact model that produced the outcome. Re-evaluating it on
    /// the reconstructed evaluation partition must reproduce `outcome.zsc`
    /// (top-1 and all) *exactly* — the old implementation retrained from
    /// scratch and, on `NoZs`, on the wrong (unpartitioned) training set.
    #[test]
    fn returned_model_reproduces_outcome_exactly() {
        let data = CubLikeDataset::generate(&DatasetConfig::tiny(27));
        let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(2));
        for split_kind in [SplitKind::NoZs, SplitKind::Zs] {
            let (outcome, model) = pipeline.run_returning_model(&data, split_kind, 3);
            let split = data.split(split_kind);
            let (eval_x, eval_labels) = if split.is_zero_shot() {
                data.features_and_labels(split.eval_classes())
            } else {
                let (_, eval_idx) = stratified_nozs_split(&data, split.train_classes());
                (
                    data.features().select_rows(&eval_idx),
                    data.instances().labels(&eval_idx),
                )
            };
            let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
            let eval_class_attr = data.class_attribute_matrix(split.eval_classes());
            let report = crate::eval::evaluate_zsc(&model, &eval_x, &eval_local, &eval_class_attr);
            assert_eq!(report, outcome.zsc, "{split_kind}");
            assert_eq!(report.top1.to_bits(), outcome.zsc.top1.to_bits());
        }
    }

    #[test]
    fn without_phase2_skips_pretraining() {
        let data = CubLikeDataset::generate(&DatasetConfig::tiny(23));
        let pipeline =
            Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(2)).without_phase2();
        assert!(pipeline.model_config().use_projection);
        assert_eq!(pipeline.train_config().epochs, 2);
        let outcome = pipeline.run(&data, SplitKind::Zs, 0);
        assert_eq!(outcome.phase2_history.epochs(), 0);
        assert!(outcome.phase3_history.epochs() > 0);
    }

    #[test]
    fn run_seeds_produces_one_outcome_per_seed() {
        let data = CubLikeDataset::generate(&DatasetConfig::tiny(24));
        let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(2));
        let outcomes = pipeline.run_seeds(&data, SplitKind::Zs, &[0, 1, 2]);
        assert_eq!(outcomes.len(), 3);
        let mean = Pipeline::mean_top1(&outcomes);
        assert!(mean > 0.0);
        assert_eq!(top1_samples(&outcomes).len(), 3);
        assert_eq!(Pipeline::mean_top1(&[]), 0.0);
    }

    #[test]
    fn helper_functions() {
        let data = CubLikeDataset::generate(&DatasetConfig::tiny(25));
        let split = data.split(SplitKind::Zs);
        let (_, labels) = data.features_and_labels(split.eval_classes());
        let (local, count) = localise_labels(&labels, split.eval_classes());
        assert_eq!(count, split.eval_classes().len());
        assert!(local.iter().all(|&l| l < count));
        let attr = class_attribute_matrix(&data, split.eval_classes());
        assert_eq!(attr.rows(), count);
    }
}
