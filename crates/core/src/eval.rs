//! Evaluation of the two tasks: zero-shot classification and attribute
//! extraction — plus the *generalized* zero-shot protocol
//! ([`evaluate_gzsl`]), where seen and unseen classes compete at query time,
//! and the serve-time rejection calibrator ([`SimilarityCalibrator`]).

use crate::model::ZscModel;
use dataset::AttributeSchema;
use metrics::wmap::{evaluate_groups, mean_over_groups};
use metrics::{partitioned_top1_accuracy, topk_accuracy, ConfusionMatrix, GroupMetrics};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Results of a zero-shot classification evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZscReport {
    /// Top-1 accuracy (fraction in `[0, 1]`).
    pub top1: f32,
    /// Top-5 accuracy (fraction in `[0, 1]`).
    pub top5: f32,
    /// Number of evaluation classes.
    pub num_classes: usize,
    /// Number of evaluated samples.
    pub num_samples: usize,
}

impl std::fmt::Display for ZscReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "top-1 {:.1}%, top-5 {:.1}% over {} classes ({} samples)",
            self.top1 * 100.0,
            self.top5 * 100.0,
            self.num_classes,
            self.num_samples
        )
    }
}

/// Results of a *generalized* zero-shot evaluation: seen and unseen classes
/// compete in one union class set, scored per partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GzslReport {
    /// Top-1 accuracy over queries whose target class is seen; `None` when
    /// the batch held no seen-class queries.
    pub seen: Option<f32>,
    /// Top-1 accuracy over queries whose target class is unseen; `None` when
    /// the batch held no unseen-class queries.
    pub unseen: Option<f32>,
    /// The harmonic-mean H metric of the two partitions (0 when either
    /// collapses or is empty).
    pub harmonic: f32,
    /// Number of seen classes in the union class set.
    pub num_seen_classes: usize,
    /// Number of unseen classes in the union class set.
    pub num_unseen_classes: usize,
    /// Number of evaluated samples.
    pub num_samples: usize,
}

impl std::fmt::Display for GzslReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = |a: Option<f32>| match a {
            Some(a) => format!("{:.1}%", a * 100.0),
            None => "n/a".to_string(),
        };
        write!(
            f,
            "seen {} / unseen {} / H {:.1}% over {}+{} classes ({} samples)",
            pct(self.seen),
            pct(self.unseen),
            self.harmonic * 100.0,
            self.num_seen_classes,
            self.num_unseen_classes,
            self.num_samples
        )
    }
}

/// Evaluates **generalized** zero-shot classification: every feature row is
/// scored against the *union* of seen and unseen classes (`unseen[c]` marks
/// class `c` unseen), and top-1 accuracy is reported per partition together
/// with the harmonic-mean H metric.
///
/// This is the protocol where bias toward seen classes actually shows:
/// under plain [`evaluate_zsc`] the unseen classes only compete with each
/// other, while here a seen lookalike can steal an unseen query — H rewards
/// models that keep both partitions accurate at once.
///
/// # Panics
///
/// Panics if `labels.len() != features.rows()`,
/// `unseen.len() != class_attributes.rows()`, or a label is out of range.
pub fn evaluate_gzsl(
    model: &ZscModel,
    features: &Matrix,
    labels: &[usize],
    class_attributes: &Matrix,
    unseen: &[bool],
) -> GzslReport {
    assert_eq!(
        features.rows(),
        labels.len(),
        "one label per feature row required"
    );
    let logits = model.class_logits(features, class_attributes);
    let partition = partitioned_top1_accuracy(&logits, labels, unseen);
    let num_unseen_classes = unseen.iter().filter(|&&u| u).count();
    GzslReport {
        seen: partition.seen,
        unseen: partition.unseen,
        harmonic: partition.harmonic(),
        num_seen_classes: unseen.len() - num_unseen_classes,
        num_unseen_classes,
        num_samples: features.rows(),
    }
}

/// A fitted serve-time rejection threshold: queries whose top-1 similarity
/// falls **strictly below** `threshold` should be answered `unknown`.
///
/// Persisted inside the v2 checkpoint envelope as an additive field, so the
/// serving layer can restore a calibrated model without refitting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityCalibration {
    /// The rejection threshold on top-1 similarity.
    pub threshold: f32,
    /// The false-reject rate the threshold was fitted to.
    pub target_false_reject: f32,
}

/// Fits a [`SimilarityCalibration`] from held-out *known*-query similarities:
/// the threshold is placed so that at most a target fraction of known
/// queries would be rejected by the strict-less rule.
///
/// Concretely, with the known top-1 similarities sorted ascending and
/// `k = ⌊target · n⌋`, the threshold is the `k`-th similarity: exactly the
/// `k` strictly-smaller similarities are rejected (ties with the threshold
/// survive), so the empirical false-reject rate is `≤ target` by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityCalibrator {
    target_false_reject: f32,
}

impl SimilarityCalibrator {
    /// A calibrator targeting the given false-reject rate.
    ///
    /// # Panics
    ///
    /// Panics unless `target_false_reject` lies in `[0, 1)` — rejecting
    /// every known query is never a useful calibration.
    pub fn new(target_false_reject: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&target_false_reject),
            "target false-reject rate must lie in [0, 1), got {target_false_reject}"
        );
        Self {
            target_false_reject,
        }
    }

    /// The false-reject rate this calibrator targets.
    pub fn target_false_reject(&self) -> f32 {
        self.target_false_reject
    }

    /// Fits the threshold on held-out known-query top-1 similarities.
    ///
    /// # Panics
    ///
    /// Panics if `known_similarities` is empty or contains a NaN.
    pub fn fit(&self, known_similarities: &[f32]) -> SimilarityCalibration {
        assert!(
            !known_similarities.is_empty(),
            "calibration needs at least one known-query similarity"
        );
        let mut sorted = known_similarities.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("calibration similarities must not be NaN")
        });
        let k = (f64::from(self.target_false_reject) * sorted.len() as f64).floor() as usize;
        SimilarityCalibration {
            threshold: sorted[k.min(sorted.len() - 1)],
            target_false_reject: self.target_false_reject,
        }
    }
}

/// Results of an attribute-extraction evaluation (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeExtractionReport {
    /// Per-group WMAP and top-1 accuracy, in schema group order.
    pub per_group: Vec<GroupMetrics>,
    /// Mean WMAP over the groups, in percent (the "average" row of Table I).
    pub mean_wmap: f32,
    /// Mean top-1 accuracy over the groups, in percent.
    pub mean_top1: f32,
}

/// Evaluates zero-shot classification: computes class logits for every
/// feature row against the evaluation classes' attribute matrix and measures
/// top-1/top-5 accuracy against the local labels.
///
/// The logits flow through the batched inference engine
/// ([`ZscModel::class_logits`], which takes `&self` — evaluation never needs
/// a mutable model and works just as well through a shared
/// [`FrozenModel`](crate::FrozenModel)); the feature batch is chunked across
/// threads and reported accuracies are bit-identical to the serial kernel
/// for every thread count.
///
/// # Panics
///
/// Panics if `labels.len() != features.rows()` or a label is out of range.
pub fn evaluate_zsc(
    model: &ZscModel,
    features: &Matrix,
    labels: &[usize],
    class_attributes: &Matrix,
) -> ZscReport {
    assert_eq!(
        features.rows(),
        labels.len(),
        "one label per feature row required"
    );
    let logits = model.class_logits(features, class_attributes);
    let top1 = topk_accuracy(&logits, labels, 1);
    let top5 = topk_accuracy(&logits, labels, 5.min(class_attributes.rows()));
    ZscReport {
        top1,
        top5,
        num_classes: class_attributes.rows(),
        num_samples: features.rows(),
    }
}

/// Evaluates zero-shot classification and additionally returns the confusion
/// matrix over the evaluation classes.
///
/// # Panics
///
/// Panics if `labels.len() != features.rows()` or a label is out of range.
pub fn evaluate_zsc_with_confusion(
    model: &ZscModel,
    features: &Matrix,
    labels: &[usize],
    class_attributes: &Matrix,
) -> (ZscReport, ConfusionMatrix) {
    let report = evaluate_zsc(model, features, labels, class_attributes);
    let predictions = model.predict(features, class_attributes);
    let mut confusion = ConfusionMatrix::new(class_attributes.rows());
    confusion.record_batch(labels, &predictions);
    (report, confusion)
}

/// Evaluates attribute extraction: predicts attribute scores for every
/// feature row and computes WMAP and top-1 accuracy per attribute group.
///
/// # Panics
///
/// Panics if `attribute_targets.rows() != features.rows()`.
pub fn evaluate_attribute_extraction(
    model: &ZscModel,
    features: &Matrix,
    attribute_targets: &Matrix,
    schema: &AttributeSchema,
) -> AttributeExtractionReport {
    assert_eq!(
        features.rows(),
        attribute_targets.rows(),
        "one attribute-target row per feature row required"
    );
    let scores = model.attribute_logits(features);
    let layout = schema.group_layout();
    let per_group = evaluate_groups(&scores, attribute_targets, &layout, 0.5);
    let mean_wmap = mean_over_groups(&per_group, |g| g.wmap);
    let mean_top1 = mean_over_groups(&per_group, |g| g.top1);
    AttributeExtractionReport {
        per_group,
        mean_wmap,
        mean_top1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, TrainConfig};
    use crate::train::AttributeExtractionTrainer;
    use dataset::{CubLikeDataset, DatasetConfig, SplitKind};

    fn fixture() -> (CubLikeDataset, AttributeSchema, ZscModel) {
        let data = CubLikeDataset::generate(&DatasetConfig::tiny(11));
        let schema = data.schema().clone();
        let model = ZscModel::new(&ModelConfig::tiny(), &schema, data.config().feature_dim);
        (data, schema, model)
    }

    #[test]
    fn zsc_report_fields_and_display() {
        let (data, _schema, model) = fixture();
        let split = data.split(SplitKind::Zs);
        let (features, labels) = data.features_and_labels(split.eval_classes());
        let local = CubLikeDataset::to_local_labels(&labels, split.eval_classes());
        let attrs = data.class_attribute_matrix(split.eval_classes());
        let report = evaluate_zsc(&model, &features, &local, &attrs);
        assert_eq!(report.num_classes, split.eval_classes().len());
        assert_eq!(report.num_samples, features.rows());
        assert!(report.top5 >= report.top1);
        assert!((0.0..=1.0).contains(&report.top1));
        assert!(report.to_string().contains("top-1"));
    }

    #[test]
    fn confusion_matrix_totals_match_sample_count() {
        let (data, _schema, model) = fixture();
        let split = data.split(SplitKind::Zs);
        let (features, labels) = data.features_and_labels(split.eval_classes());
        let local = CubLikeDataset::to_local_labels(&labels, split.eval_classes());
        let attrs = data.class_attribute_matrix(split.eval_classes());
        let (report, confusion) = evaluate_zsc_with_confusion(&model, &features, &local, &attrs);
        assert_eq!(confusion.total() as usize, report.num_samples);
        assert!((confusion.accuracy() - report.top1).abs() < 1e-5);
    }

    #[test]
    fn gzsl_report_partitions_and_harmonic_are_consistent() {
        let (data, _schema, model) = fixture();
        let split = data.split(SplitKind::Zs);
        // Union class set: train (seen) + eval (unseen) classes, queries
        // drawn from both partitions.
        let union: Vec<usize> = split
            .train_classes()
            .iter()
            .chain(split.eval_classes())
            .copied()
            .collect();
        let unseen: Vec<bool> = union
            .iter()
            .map(|c| split.eval_classes().contains(c))
            .collect();
        let (features, labels) = data.features_and_labels(&union);
        let local = CubLikeDataset::to_local_labels(&labels, &union);
        let attrs = data.class_attribute_matrix(&union);
        let report = evaluate_gzsl(&model, &features, &local, &attrs, &unseen);
        assert_eq!(report.num_samples, features.rows());
        assert_eq!(
            report.num_seen_classes + report.num_unseen_classes,
            union.len()
        );
        assert_eq!(report.num_unseen_classes, split.eval_classes().len());
        let (seen, unseen_acc) = (report.seen.expect("seen"), report.unseen.expect("unseen"));
        assert_eq!(
            report.harmonic,
            metrics::harmonic_mean(seen, unseen_acc),
            "harmonic must be derived from the reported partitions"
        );
        assert!(report.to_string().contains("H "));
    }

    #[test]
    fn gzsl_with_one_empty_partition_scores_zero_harmonic() {
        let (data, _schema, model) = fixture();
        let split = data.split(SplitKind::Zs);
        let eval = split.eval_classes();
        let (features, labels) = data.features_and_labels(eval);
        let local = CubLikeDataset::to_local_labels(&labels, eval);
        let attrs = data.class_attribute_matrix(eval);
        // Every class marked unseen: the seen partition is empty.
        let report = evaluate_gzsl(&model, &features, &local, &attrs, &vec![true; eval.len()]);
        assert_eq!(report.seen, None);
        assert_eq!(report.harmonic, 0.0);
        // All-unseen scoring degenerates to the plain ZSC protocol.
        let plain = evaluate_zsc(&model, &features, &local, &attrs);
        assert_eq!(report.unseen, Some(plain.top1));
    }

    #[test]
    fn calibrator_rejects_at_most_the_target_fraction() {
        let sims: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let calibration = SimilarityCalibrator::new(0.1).fit(&sims);
        assert_eq!(calibration.target_false_reject, 0.1);
        // Threshold is the 10th-smallest similarity; strict `<` rejects
        // exactly the 10 below it.
        assert_eq!(calibration.threshold, 0.10);
        let rejected = sims.iter().filter(|&&s| s < calibration.threshold).count();
        assert_eq!(rejected, 10);
        // Ties with the threshold survive.
        let tied = vec![0.5f32; 8];
        let calibration = SimilarityCalibrator::new(0.25).fit(&tied);
        assert_eq!(calibration.threshold, 0.5);
        assert_eq!(
            tied.iter().filter(|&&s| s < calibration.threshold).count(),
            0
        );
        // Target 0 keeps every known query.
        let calibration = SimilarityCalibrator::new(0.0).fit(&sims);
        assert_eq!(calibration.threshold, 0.0);
        assert_eq!(
            sims.iter().filter(|&&s| s < calibration.threshold).count(),
            0
        );
    }

    #[test]
    fn calibration_serde_round_trip_is_bit_exact() {
        use serde::{Deserialize, Serialize};
        let calibration = SimilarityCalibrator::new(0.05).fit(&[0.31, 0.72, 0.55, 0.48]);
        let value = calibration.to_value();
        let restored = SimilarityCalibration::from_value(&value).expect("round trip");
        assert_eq!(
            restored.threshold.to_bits(),
            calibration.threshold.to_bits()
        );
        assert_eq!(restored, calibration);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1)")]
    fn calibrator_rejects_degenerate_targets() {
        let _ = SimilarityCalibrator::new(1.0);
    }

    #[test]
    fn attribute_report_covers_all_groups() {
        let (data, schema, model) = fixture();
        let split = data.split(SplitKind::NoZs);
        let (features, targets) = data.features_and_attributes(split.train_classes());
        let report = evaluate_attribute_extraction(&model, &features, &targets, &schema);
        assert_eq!(report.per_group.len(), 28);
        assert!((0.0..=100.0).contains(&report.mean_wmap));
        assert!((0.0..=100.0).contains(&report.mean_top1));
    }

    #[test]
    fn attribute_extraction_training_improves_the_report() {
        let (data, schema, mut model) = fixture();
        let split = data.split(SplitKind::NoZs);
        let (features, targets) = data.features_and_attributes(split.train_classes());
        let before = evaluate_attribute_extraction(&model, &features, &targets, &schema);
        let trainer = AttributeExtractionTrainer::new(TrainConfig::fast().with_epochs(5));
        let _ = trainer.train(&mut model, &features, &targets);
        let after = evaluate_attribute_extraction(&model, &features, &targets, &schema);
        assert!(
            after.mean_top1 > before.mean_top1,
            "training should improve group top-1 ({} vs {})",
            after.mean_top1,
            before.mean_top1
        );
    }
}
