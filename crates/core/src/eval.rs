//! Evaluation of the two tasks: zero-shot classification and attribute
//! extraction.

use crate::model::ZscModel;
use dataset::AttributeSchema;
use metrics::wmap::{evaluate_groups, mean_over_groups};
use metrics::{topk_accuracy, ConfusionMatrix, GroupMetrics};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Results of a zero-shot classification evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZscReport {
    /// Top-1 accuracy (fraction in `[0, 1]`).
    pub top1: f32,
    /// Top-5 accuracy (fraction in `[0, 1]`).
    pub top5: f32,
    /// Number of evaluation classes.
    pub num_classes: usize,
    /// Number of evaluated samples.
    pub num_samples: usize,
}

impl std::fmt::Display for ZscReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "top-1 {:.1}%, top-5 {:.1}% over {} classes ({} samples)",
            self.top1 * 100.0,
            self.top5 * 100.0,
            self.num_classes,
            self.num_samples
        )
    }
}

/// Results of an attribute-extraction evaluation (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeExtractionReport {
    /// Per-group WMAP and top-1 accuracy, in schema group order.
    pub per_group: Vec<GroupMetrics>,
    /// Mean WMAP over the groups, in percent (the "average" row of Table I).
    pub mean_wmap: f32,
    /// Mean top-1 accuracy over the groups, in percent.
    pub mean_top1: f32,
}

/// Evaluates zero-shot classification: computes class logits for every
/// feature row against the evaluation classes' attribute matrix and measures
/// top-1/top-5 accuracy against the local labels.
///
/// The logits flow through the batched inference engine
/// ([`ZscModel::class_logits`], which takes `&self` — evaluation never needs
/// a mutable model and works just as well through a shared
/// [`FrozenModel`](crate::FrozenModel)); the feature batch is chunked across
/// threads and reported accuracies are bit-identical to the serial kernel
/// for every thread count.
///
/// # Panics
///
/// Panics if `labels.len() != features.rows()` or a label is out of range.
pub fn evaluate_zsc(
    model: &ZscModel,
    features: &Matrix,
    labels: &[usize],
    class_attributes: &Matrix,
) -> ZscReport {
    assert_eq!(
        features.rows(),
        labels.len(),
        "one label per feature row required"
    );
    let logits = model.class_logits(features, class_attributes);
    let top1 = topk_accuracy(&logits, labels, 1);
    let top5 = topk_accuracy(&logits, labels, 5.min(class_attributes.rows()));
    ZscReport {
        top1,
        top5,
        num_classes: class_attributes.rows(),
        num_samples: features.rows(),
    }
}

/// Evaluates zero-shot classification and additionally returns the confusion
/// matrix over the evaluation classes.
///
/// # Panics
///
/// Panics if `labels.len() != features.rows()` or a label is out of range.
pub fn evaluate_zsc_with_confusion(
    model: &ZscModel,
    features: &Matrix,
    labels: &[usize],
    class_attributes: &Matrix,
) -> (ZscReport, ConfusionMatrix) {
    let report = evaluate_zsc(model, features, labels, class_attributes);
    let predictions = model.predict(features, class_attributes);
    let mut confusion = ConfusionMatrix::new(class_attributes.rows());
    confusion.record_batch(labels, &predictions);
    (report, confusion)
}

/// Evaluates attribute extraction: predicts attribute scores for every
/// feature row and computes WMAP and top-1 accuracy per attribute group.
///
/// # Panics
///
/// Panics if `attribute_targets.rows() != features.rows()`.
pub fn evaluate_attribute_extraction(
    model: &ZscModel,
    features: &Matrix,
    attribute_targets: &Matrix,
    schema: &AttributeSchema,
) -> AttributeExtractionReport {
    assert_eq!(
        features.rows(),
        attribute_targets.rows(),
        "one attribute-target row per feature row required"
    );
    let scores = model.attribute_logits(features);
    let layout = schema.group_layout();
    let per_group = evaluate_groups(&scores, attribute_targets, &layout, 0.5);
    let mean_wmap = mean_over_groups(&per_group, |g| g.wmap);
    let mean_top1 = mean_over_groups(&per_group, |g| g.top1);
    AttributeExtractionReport {
        per_group,
        mean_wmap,
        mean_top1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, TrainConfig};
    use crate::train::AttributeExtractionTrainer;
    use dataset::{CubLikeDataset, DatasetConfig, SplitKind};

    fn fixture() -> (CubLikeDataset, AttributeSchema, ZscModel) {
        let data = CubLikeDataset::generate(&DatasetConfig::tiny(11));
        let schema = data.schema().clone();
        let model = ZscModel::new(&ModelConfig::tiny(), &schema, data.config().feature_dim);
        (data, schema, model)
    }

    #[test]
    fn zsc_report_fields_and_display() {
        let (data, _schema, model) = fixture();
        let split = data.split(SplitKind::Zs);
        let (features, labels) = data.features_and_labels(split.eval_classes());
        let local = CubLikeDataset::to_local_labels(&labels, split.eval_classes());
        let attrs = data.class_attribute_matrix(split.eval_classes());
        let report = evaluate_zsc(&model, &features, &local, &attrs);
        assert_eq!(report.num_classes, split.eval_classes().len());
        assert_eq!(report.num_samples, features.rows());
        assert!(report.top5 >= report.top1);
        assert!((0.0..=1.0).contains(&report.top1));
        assert!(report.to_string().contains("top-1"));
    }

    #[test]
    fn confusion_matrix_totals_match_sample_count() {
        let (data, _schema, model) = fixture();
        let split = data.split(SplitKind::Zs);
        let (features, labels) = data.features_and_labels(split.eval_classes());
        let local = CubLikeDataset::to_local_labels(&labels, split.eval_classes());
        let attrs = data.class_attribute_matrix(split.eval_classes());
        let (report, confusion) = evaluate_zsc_with_confusion(&model, &features, &local, &attrs);
        assert_eq!(confusion.total() as usize, report.num_samples);
        assert!((confusion.accuracy() - report.top1).abs() < 1e-5);
    }

    #[test]
    fn attribute_report_covers_all_groups() {
        let (data, schema, model) = fixture();
        let split = data.split(SplitKind::NoZs);
        let (features, targets) = data.features_and_attributes(split.train_classes());
        let report = evaluate_attribute_extraction(&model, &features, &targets, &schema);
        assert_eq!(report.per_group.len(), 28);
        assert!((0.0..=100.0).contains(&report.mean_wmap));
        assert!((0.0..=100.0).contains(&report.mean_top1));
    }

    #[test]
    fn attribute_extraction_training_improves_the_report() {
        let (data, schema, mut model) = fixture();
        let split = data.split(SplitKind::NoZs);
        let (features, targets) = data.features_and_attributes(split.train_classes());
        let before = evaluate_attribute_extraction(&model, &features, &targets, &schema);
        let trainer = AttributeExtractionTrainer::new(TrainConfig::fast().with_epochs(5));
        let _ = trainer.train(&mut model, &features, &targets);
        let after = evaluate_attribute_extraction(&model, &features, &targets, &schema);
        assert!(
            after.mean_top1 > before.mean_top1,
            "training should improve group top-1 ({} vs {})",
            after.mean_top1,
            before.mean_top1
        );
    }
}
