//! Attribute encoders `ϕ(·)`: the stationary HDC encoder (the paper's
//! contribution) and the trainable-MLP baseline.

use dataset::AttributeSchema;
use hdc::{Codebook, CodebookMemory, HdcConfig};
use nn::{ActivationKind, Layer, Mlp, ParamTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{de, DeError, Deserialize, Serialize, Value};
use tensor::Matrix;

/// Which attribute-encoder variant a model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeEncoderKind {
    /// Stationary binary/bipolar HDC codebooks (the paper's HDC-ZSC).
    Hdc,
    /// A trainable 2-layer MLP (the paper's *Trainable-MLP* reference model).
    TrainableMlp,
}

impl std::fmt::Display for AttributeEncoderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttributeEncoderKind::Hdc => f.write_str("HDC"),
            AttributeEncoderKind::TrainableMlp => f.write_str("Trainable-MLP"),
        }
    }
}

/// The stationary HDC attribute encoder of §III-A.
///
/// Two codebooks of random bipolar atomic hypervectors are drawn once — one
/// per attribute **group** (`G = 28` for CUB) and one per attribute **value**
/// (`V = 61`) — and never trained. The `α = 312` attribute codevectors are
/// materialised by *binding* the matching group and value hypervectors
/// (`bₓ = g_y ⊙ v_z`), and class embeddings are the product of the continuous
/// class-attribute matrix with the attribute dictionary, `ϕ(A) = A × B`.
///
/// # Example
///
/// ```
/// use dataset::AttributeSchema;
/// use hdc_zsc::HdcAttributeEncoder;
/// use tensor::Matrix;
///
/// let schema = AttributeSchema::cub200();
/// let encoder = HdcAttributeEncoder::new(&schema, 1536, 7);
/// assert_eq!(encoder.dictionary().shape(), (312, 1536));
/// let class_attributes = Matrix::ones(3, 312);
/// assert_eq!(encoder.encode_classes(&class_attributes).shape(), (3, 1536));
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct HdcAttributeEncoder {
    groups: Codebook,
    values: Codebook,
    dictionary: Matrix,
    dim: usize,
    schema_counts: (usize, usize, usize),
}

/// Hand-written (instead of derived) so the cross-field invariants — the
/// codebooks, the materialised dictionary and the schema counts must agree —
/// are validated with typed errors on load.
impl Deserialize for HdcAttributeEncoder {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "HdcAttributeEncoder")?;
        let groups: Codebook = de::field(entries, "groups", "HdcAttributeEncoder")?;
        let values: Codebook = de::field(entries, "values", "HdcAttributeEncoder")?;
        let dictionary: Matrix = de::field(entries, "dictionary", "HdcAttributeEncoder")?;
        let dim: usize = de::field(entries, "dim", "HdcAttributeEncoder")?;
        let schema_counts: (usize, usize, usize) =
            de::field(entries, "schema_counts", "HdcAttributeEncoder")?;
        let type_err = |msg: String| DeError::new(msg).in_field("HdcAttributeEncoder");
        if groups.dim() != dim || values.dim() != dim {
            return Err(type_err(format!(
                "codebook dims ({}, {}) do not match the encoder's {dim}",
                groups.dim(),
                values.dim()
            )));
        }
        if groups.len() != schema_counts.0 || values.len() != schema_counts.1 {
            return Err(type_err(format!(
                "codebook sizes ({}, {}) do not match the schema counts ({}, {})",
                groups.len(),
                values.len(),
                schema_counts.0,
                schema_counts.1
            )));
        }
        if dictionary.shape() != (schema_counts.2, dim) {
            return Err(type_err(format!(
                "dictionary shape {:?} does not match {} attributes × dim {dim}",
                dictionary.shape(),
                schema_counts.2
            )));
        }
        if dictionary.as_slice().iter().any(|&v| v != 1.0 && v != -1.0) {
            return Err(type_err("dictionary entries must be ±1".to_string()));
        }
        Ok(Self {
            groups,
            values,
            dictionary,
            dim,
            schema_counts,
        })
    }
}

impl HdcAttributeEncoder {
    /// Draws the group/value codebooks from `seed` and materialises the
    /// attribute dictionary for the given schema.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(schema: &AttributeSchema, dim: usize, seed: u64) -> Self {
        let cfg = HdcConfig::new(dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = Codebook::random(schema.num_groups(), &cfg, &mut rng);
        let values = Codebook::random(schema.num_values(), &cfg, &mut rng);
        let mut rows = Vec::with_capacity(schema.num_attributes());
        for &(g, v) in schema.pairs() {
            let bound = groups
                .bind_with(g, &values, v)
                .expect("schema indices are within the codebooks by construction");
            rows.push(bound.to_f32());
        }
        let dictionary = Matrix::from_rows(&rows);
        Self {
            groups,
            values,
            dictionary,
            dim,
            schema_counts: (
                schema.num_groups(),
                schema.num_values(),
                schema.num_attributes(),
            ),
        }
    }

    /// Embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The attribute dictionary `B ∈ {−1,+1}^{α×d}` as a float matrix.
    pub fn dictionary(&self) -> &Matrix {
        &self.dictionary
    }

    /// The group codebook (28 atomic hypervectors for CUB).
    pub fn group_codebook(&self) -> &Codebook {
        &self.groups
    }

    /// The value codebook (61 atomic hypervectors for CUB).
    pub fn value_codebook(&self) -> &Codebook {
        &self.values
    }

    /// Encodes a class-attribute matrix `A ∈ R^{C×α}` into class embeddings
    /// `ϕ(A) = A × B ∈ R^{C×d}`.
    ///
    /// # Panics
    ///
    /// Panics if `class_attributes.cols()` differs from the schema's `α`.
    pub fn encode_classes(&self, class_attributes: &Matrix) -> Matrix {
        assert_eq!(
            class_attributes.cols(),
            self.dictionary.rows(),
            "class attribute matrix width {} does not match the dictionary ({} attributes)",
            class_attributes.cols(),
            self.dictionary.rows()
        );
        class_attributes.matmul(&self.dictionary)
    }

    /// Number of trainable parameters — zero: the encoder is stationary.
    pub fn num_trainable_params(&self) -> usize {
        0
    }

    /// Memory accounting of the factored codebooks (the paper's 71% / 17 KB
    /// claim).
    pub fn memory(&self) -> CodebookMemory {
        let (g, v, a) = self.schema_counts;
        CodebookMemory::new(g, v, a, self.dim)
    }
}

/// The paper's *Trainable-MLP* reference attribute encoder: a 2-layer MLP
/// mapping the `α`-dimensional class-attribute vector to the shared embedding
/// space.
#[derive(Debug, Clone, Serialize)]
pub struct MlpAttributeEncoder {
    mlp: Mlp,
    alpha: usize,
    dim: usize,
}

/// Hand-written (instead of derived) so the MLP's widths are validated
/// against the declared `α → … → d` signature on load.
impl Deserialize for MlpAttributeEncoder {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "MlpAttributeEncoder")?;
        let mlp: Mlp = de::field(entries, "mlp", "MlpAttributeEncoder")?;
        let alpha: usize = de::field(entries, "alpha", "MlpAttributeEncoder")?;
        let dim: usize = de::field(entries, "dim", "MlpAttributeEncoder")?;
        if mlp.dims().first() != Some(&alpha) || mlp.dims().last() != Some(&dim) {
            return Err(DeError::new(format!(
                "MLP widths {:?} do not map α = {alpha} to d = {dim}",
                mlp.dims()
            ))
            .in_field("MlpAttributeEncoder"));
        }
        Ok(Self { mlp, alpha, dim })
    }
}

impl MlpAttributeEncoder {
    /// Builds the MLP `α → hidden → d` with ReLU in between.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(schema: &AttributeSchema, hidden: usize, dim: usize, seed: u64) -> Self {
        let alpha = schema.num_attributes();
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[alpha, hidden, dim], ActivationKind::Relu, &mut rng);
        Self { mlp, alpha, dim }
    }

    /// Embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Attribute dimensionality `α`.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Immutable inference encoding: maps class attributes to embeddings
    /// through `&self`, caching nothing. Bit-identical to the training
    /// forward; this is the path a shared
    /// [`FrozenModel`](crate::FrozenModel) encodes classes through.
    ///
    /// # Panics
    ///
    /// Panics if `class_attributes.cols() != self.alpha()`.
    pub fn infer_classes(&self, class_attributes: &Matrix) -> Matrix {
        self.mlp.infer(class_attributes)
    }

    /// Encodes class attributes into embeddings, caching activations when
    /// `train` is `true` so that [`MlpAttributeEncoder::backward`] can run.
    ///
    /// # Panics
    ///
    /// Panics if `class_attributes.cols() != self.alpha()`.
    pub fn encode_classes(&mut self, class_attributes: &Matrix, train: bool) -> Matrix {
        self.mlp.forward(class_attributes, train)
    }

    /// Back-propagates the gradient of the loss with respect to the class
    /// embeddings, accumulating the MLP parameter gradients.
    pub fn backward(&mut self, grad_embeddings: &Matrix) -> Matrix {
        self.mlp.backward(grad_embeddings)
    }

    /// Number of trainable parameters.
    pub fn num_trainable_params(&self) -> usize {
        self.mlp.num_params()
    }

    /// Visits the MLP parameters (for the optimizer).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor)) {
        self.mlp.visit_params(f);
    }

    /// Read-only visitation of the MLP parameters, in the same order as
    /// [`MlpAttributeEncoder::visit_params`].
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor)) {
        self.mlp.visit_params_ref(f);
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.mlp.zero_grad();
    }
}

/// An attribute encoder of either kind, presenting the minimal common
/// interface the trainers need.
#[derive(Debug, Clone)]
pub enum AttributeEncoder {
    /// Stationary HDC encoder.
    Hdc(HdcAttributeEncoder),
    /// Trainable 2-layer MLP encoder.
    Mlp(MlpAttributeEncoder),
}

/// Checkpoint format: the encoder kind plus exactly one populated payload
/// field (the derive macro only supports unit enums, so the data-carrying
/// variant is encoded by hand).
impl Serialize for AttributeEncoder {
    fn to_value(&self) -> Value {
        let (hdc, mlp) = match self {
            AttributeEncoder::Hdc(e) => (Some(e.to_value()), None),
            AttributeEncoder::Mlp(e) => (None, Some(e.to_value())),
        };
        Value::Object(vec![
            ("kind".to_string(), self.kind().to_value()),
            ("hdc".to_string(), hdc.unwrap_or(Value::Null)),
            ("mlp".to_string(), mlp.unwrap_or(Value::Null)),
        ])
    }
}

impl Deserialize for AttributeEncoder {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "AttributeEncoder")?;
        let kind: AttributeEncoderKind = de::field(entries, "kind", "AttributeEncoder")?;
        match kind {
            AttributeEncoderKind::Hdc => {
                let payload: Option<HdcAttributeEncoder> =
                    de::field(entries, "hdc", "AttributeEncoder")?;
                payload.map(AttributeEncoder::Hdc).ok_or_else(|| {
                    DeError::missing_field("hdc", "AttributeEncoder").in_field("AttributeEncoder")
                })
            }
            AttributeEncoderKind::TrainableMlp => {
                let payload: Option<MlpAttributeEncoder> =
                    de::field(entries, "mlp", "AttributeEncoder")?;
                payload.map(AttributeEncoder::Mlp).ok_or_else(|| {
                    DeError::missing_field("mlp", "AttributeEncoder").in_field("AttributeEncoder")
                })
            }
        }
    }
}

impl AttributeEncoder {
    /// Builds an encoder of the requested kind.
    pub fn build(
        kind: AttributeEncoderKind,
        schema: &AttributeSchema,
        dim: usize,
        mlp_hidden: usize,
        seed: u64,
    ) -> Self {
        match kind {
            AttributeEncoderKind::Hdc => Self::Hdc(HdcAttributeEncoder::new(schema, dim, seed)),
            AttributeEncoderKind::TrainableMlp => {
                Self::Mlp(MlpAttributeEncoder::new(schema, mlp_hidden, dim, seed))
            }
        }
    }

    /// The encoder kind.
    pub fn kind(&self) -> AttributeEncoderKind {
        match self {
            AttributeEncoder::Hdc(_) => AttributeEncoderKind::Hdc,
            AttributeEncoder::Mlp(_) => AttributeEncoderKind::TrainableMlp,
        }
    }

    /// Embedding dimensionality `d`.
    pub fn dim(&self) -> usize {
        match self {
            AttributeEncoder::Hdc(e) => e.dim(),
            AttributeEncoder::Mlp(e) => e.dim(),
        }
    }

    /// Attribute dimensionality `α` the encoder ingests (the width of the
    /// class-attribute matrices it accepts).
    pub fn num_attributes(&self) -> usize {
        match self {
            AttributeEncoder::Hdc(e) => e.dictionary().rows(),
            AttributeEncoder::Mlp(e) => e.alpha(),
        }
    }

    /// Immutable inference encoding of a class-attribute matrix into class
    /// embeddings through `&self`; bit-identical to
    /// [`AttributeEncoder::encode_classes`]. The HDC encoder is stationary
    /// either way; the MLP variant skips its activation caches.
    pub fn infer_classes(&self, class_attributes: &Matrix) -> Matrix {
        match self {
            AttributeEncoder::Hdc(e) => e.encode_classes(class_attributes),
            AttributeEncoder::Mlp(e) => e.infer_classes(class_attributes),
        }
    }

    /// Encodes a class-attribute matrix into class embeddings, caching
    /// activations for the backward pass when `train` is set.
    pub fn encode_classes(&mut self, class_attributes: &Matrix, train: bool) -> Matrix {
        match self {
            AttributeEncoder::Hdc(e) => e.encode_classes(class_attributes),
            AttributeEncoder::Mlp(e) => e.encode_classes(class_attributes, train),
        }
    }

    /// Whether gradients flow into the encoder (true only for the MLP).
    pub fn is_trainable(&self) -> bool {
        matches!(self, AttributeEncoder::Mlp(_))
    }

    /// Back-propagates the gradient with respect to the class embeddings; a
    /// no-op for the stationary HDC encoder.
    pub fn backward(&mut self, grad_embeddings: &Matrix) {
        if let AttributeEncoder::Mlp(e) = self {
            let _ = e.backward(grad_embeddings);
        }
    }

    /// Number of trainable parameters.
    pub fn num_trainable_params(&self) -> usize {
        match self {
            AttributeEncoder::Hdc(e) => e.num_trainable_params(),
            AttributeEncoder::Mlp(e) => e.num_trainable_params(),
        }
    }

    /// Visits trainable parameters (none for HDC).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor)) {
        if let AttributeEncoder::Mlp(e) = self {
            e.visit_params(f);
        }
    }

    /// Read-only visitation of the trainable parameters (none for HDC), in
    /// the same order as [`AttributeEncoder::visit_params`].
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor)) {
        if let AttributeEncoder::Mlp(e) = self {
            e.visit_params_ref(f);
        }
    }

    /// Zeroes accumulated gradients (no-op for HDC).
    pub fn zero_grad(&mut self) {
        if let AttributeEncoder::Mlp(e) = self {
            e.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::similarity::cosine_to_dictionary;

    fn schema() -> AttributeSchema {
        AttributeSchema::cub200()
    }

    #[test]
    fn hdc_encoder_dictionary_shape_and_values() {
        let encoder = HdcAttributeEncoder::new(&schema(), 256, 1);
        let dict = encoder.dictionary();
        assert_eq!(dict.shape(), (312, 256));
        assert!(dict.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
        assert_eq!(encoder.dim(), 256);
        assert_eq!(encoder.num_trainable_params(), 0);
        assert_eq!(encoder.group_codebook().len(), 28);
        assert_eq!(encoder.value_codebook().len(), 61);
    }

    #[test]
    fn hdc_encoder_is_deterministic_in_seed() {
        let s = schema();
        let a = HdcAttributeEncoder::new(&s, 128, 3);
        let b = HdcAttributeEncoder::new(&s, 128, 3);
        let c = HdcAttributeEncoder::new(&s, 128, 4);
        assert_eq!(a.dictionary(), b.dictionary());
        assert!(a.dictionary().max_abs_diff(c.dictionary()) > 0.0);
    }

    #[test]
    fn dictionary_rows_are_bound_pairs() {
        // Row x must equal group_of(x) ⊙ value_of(x).
        let s = schema();
        let encoder = HdcAttributeEncoder::new(&s, 512, 5);
        for &attr in &[0usize, 50, 150, 311] {
            let (g, v) = s.pair_of(attr);
            let expected = encoder
                .group_codebook()
                .get(g)
                .bind(encoder.value_codebook().get(v));
            assert_eq!(encoder.dictionary().row(attr), &expected.to_f32()[..]);
        }
    }

    #[test]
    fn dictionary_rows_are_quasi_orthogonal() {
        let s = schema();
        let encoder = HdcAttributeEncoder::new(&s, 4096, 6);
        // Attributes sharing a group or value are still quasi-orthogonal
        // because binding randomises the result.
        let dict = encoder.dictionary();
        let r0 = dict.row(0).to_vec();
        let sims = cosine_to_dictionary(&r0, dict);
        for (i, s) in sims.iter().enumerate() {
            if i == 0 {
                assert!((s - 1.0).abs() < 1e-5);
            } else {
                assert!(s.abs() < 0.1, "attribute 0 vs {i}: |cos| = {}", s.abs());
            }
        }
    }

    #[test]
    fn encode_classes_matches_manual_product() {
        let s = schema();
        let encoder = HdcAttributeEncoder::new(&s, 64, 7);
        let a = Matrix::random_uniform(4, 312, 1.0, &mut StdRng::seed_from_u64(1));
        let phi = encoder.encode_classes(&a);
        let manual = a.matmul(encoder.dictionary());
        assert!(phi.max_abs_diff(&manual) < 1e-5);
    }

    #[test]
    fn memory_accounting_matches_paper() {
        let encoder = HdcAttributeEncoder::new(&schema(), 1536, 8);
        let mem = encoder.memory();
        assert!((mem.reduction_fraction() - 0.71).abs() < 0.01);
        assert!(mem.factored_bytes() < 18 * 1024);
    }

    #[test]
    fn mlp_encoder_shapes_and_training_interface() {
        let s = schema();
        let mut encoder = MlpAttributeEncoder::new(&s, 64, 32, 9);
        assert_eq!(encoder.dim(), 32);
        assert_eq!(encoder.alpha(), 312);
        assert!(encoder.num_trainable_params() > 0);
        let a = Matrix::ones(5, 312);
        let phi = encoder.encode_classes(&a, true);
        assert_eq!(phi.shape(), (5, 32));
        let grad_back = encoder.backward(&Matrix::ones(5, 32));
        assert_eq!(grad_back.shape(), (5, 312));
        encoder.zero_grad();
    }

    #[test]
    fn enum_dispatch_consistency() {
        let s = schema();
        let mut hdc_enc = AttributeEncoder::build(AttributeEncoderKind::Hdc, &s, 64, 32, 1);
        let mut mlp_enc =
            AttributeEncoder::build(AttributeEncoderKind::TrainableMlp, &s, 64, 32, 1);
        assert_eq!(hdc_enc.kind(), AttributeEncoderKind::Hdc);
        assert_eq!(mlp_enc.kind(), AttributeEncoderKind::TrainableMlp);
        assert!(!hdc_enc.is_trainable());
        assert!(mlp_enc.is_trainable());
        assert_eq!(hdc_enc.dim(), 64);
        assert_eq!(mlp_enc.dim(), 64);
        assert_eq!(hdc_enc.num_trainable_params(), 0);
        assert!(mlp_enc.num_trainable_params() > 0);
        let a = Matrix::ones(2, 312);
        assert_eq!(hdc_enc.encode_classes(&a, false).shape(), (2, 64));
        assert_eq!(mlp_enc.encode_classes(&a, true).shape(), (2, 64));
        // backward is a no-op for HDC and must not panic.
        hdc_enc.backward(&Matrix::ones(2, 64));
        mlp_enc.backward(&Matrix::ones(2, 64));
        let mut hdc_visits = 0;
        hdc_enc.visit_params(&mut |_| hdc_visits += 1);
        assert_eq!(hdc_visits, 0);
        let mut mlp_visits = 0;
        mlp_enc.visit_params(&mut |_| mlp_visits += 1);
        assert_eq!(mlp_visits, 4);
        hdc_enc.zero_grad();
        mlp_enc.zero_grad();
        assert_eq!(AttributeEncoderKind::Hdc.to_string(), "HDC");
        assert_eq!(
            AttributeEncoderKind::TrainableMlp.to_string(),
            "Trainable-MLP"
        );
    }
}
