//! Model checkpointing: a versioned JSON envelope around a trained
//! [`ZscModel`], so models are trained once and served many times.
//!
//! A [`Checkpoint`] pins three things next to the model weights:
//!
//! * a **format version**, checked *before* the model payload is decoded so
//!   future layout changes fail fast with a typed error;
//! * the **model configuration** the model was built from;
//! * a **schema fingerprint** (`G`/`V`/`α` counts), so a checkpoint trained
//!   against one attribute schema cannot be silently served against another.
//!
//! Loading validates dimensions and invariants end to end (see the
//! hand-written `Deserialize` impls on the model parts) and reports every
//! failure as a [`CheckpointError`] instead of panicking. Derived state —
//! gradient buffers, similarity-kernel caches, the engine's packed class
//! memories, thread pools — is intentionally not persisted and is rebuilt on
//! load.
//!
//! # Layout versions and kinds
//!
//! Version 2 (current) adds a `kind` discriminator to the envelope so the
//! two on-disk documents this crate writes — a plain model checkpoint
//! (`"model"`) and a serve-time [`CheckpointDelta`] (`"serve-delta"`, the
//! compaction base of the serving layer's write-ahead log) — cannot be
//! confused for one another: loading a delta through the model loader (or
//! vice versa) fails with [`CheckpointError::WrongKind`] instead of a
//! confusing payload error. Version-1 documents (no `kind` field) are still
//! accepted by [`Checkpoint::from_json_str`]; saving always writes the
//! current layout.
//!
//! All saves are atomic: the document is written to a sibling `.tmp` file,
//! fsynced, and `rename`d over the destination, so a crash mid-save can
//! never corrupt the only good checkpoint.
//!
//! # Example
//!
//! ```
//! use dataset::AttributeSchema;
//! use hdc_zsc::{Checkpoint, ModelConfig, ZscModel};
//!
//! let schema = AttributeSchema::cub200();
//! let model = ZscModel::new(&ModelConfig::tiny(), &schema, 48);
//! let checkpoint = Checkpoint::capture(&model, &schema);
//! let json = checkpoint.to_json();
//! let restored = Checkpoint::from_json_str(&json)
//!     .and_then(|c| c.into_model(&schema))
//!     .expect("round trip");
//! assert_eq!(restored.embedding_dim(), 64);
//! ```

use crate::config::ModelConfig;
use crate::eval::SimilarityCalibration;
use crate::model::ZscModel;
use dataset::AttributeSchema;
use engine::{RoutedClassMemory, ShardedClassMemory};
use serde::{de, DeError, Deserialize, Serialize, Value};
use std::io::Write;
use std::path::Path;

/// Version of the on-disk checkpoint layout produced by this crate.
///
/// Version 2 added the `kind` discriminator and the [`CheckpointDelta`]
/// envelope; version-1 model checkpoints are still readable.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 2;

/// The oldest layout version [`Checkpoint::from_json_str`] still reads.
pub const CHECKPOINT_LEGACY_FORMAT_VERSION: u32 = 1;

/// `kind` discriminator of a plain model checkpoint.
const KIND_MODEL: &str = "model";

/// `kind` discriminator of a serve-time checkpoint delta.
const KIND_DELTA: &str = "serve-delta";

/// The attribute-schema shape a checkpoint was trained against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaFingerprint {
    /// Number of attribute groups (`G`).
    pub groups: usize,
    /// Number of unique attribute values (`V`).
    pub values: usize,
    /// Number of attributes (`α`).
    pub attributes: usize,
}

impl SchemaFingerprint {
    /// The fingerprint of a concrete schema.
    pub fn of(schema: &AttributeSchema) -> Self {
        Self {
            groups: schema.num_groups(),
            values: schema.num_values(),
            attributes: schema.num_attributes(),
        }
    }
}

impl std::fmt::Display for SchemaFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "G={} V={} α={}",
            self.groups, self.values, self.attributes
        )
    }
}

/// Why a checkpoint could not be saved or loaded.
///
/// Marked `#[non_exhaustive]`: future layouts may add failure modes, so
/// downstream matches must keep a wildcard arm.
#[derive(Debug)]
#[must_use = "a checkpoint error describes why the model cannot be served and should be handled"]
#[non_exhaustive]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The document is not valid JSON or does not decode into a checkpoint.
    Malformed(String),
    /// The document declares a layout version this build cannot read.
    UnsupportedVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The checkpoint was trained against a different attribute schema.
    SchemaMismatch {
        /// Fingerprint stored in the checkpoint.
        checkpoint: SchemaFingerprint,
        /// Fingerprint of the schema the caller wants to serve.
        requested: SchemaFingerprint,
    },
    /// Two parts of the checkpoint disagree about a dimension.
    DimensionMismatch {
        /// Which dimension disagrees.
        what: &'static str,
        /// Value implied by one part.
        expected: usize,
        /// Value found in the other.
        found: usize,
    },
    /// The document is a valid envelope of a different kind — e.g. a
    /// serve-time delta handed to the model loader, or vice versa.
    WrongKind {
        /// The `kind` declared by the document.
        found: String,
        /// The kind the loader expected.
        expected: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {supported})"
            ),
            CheckpointError::SchemaMismatch {
                checkpoint,
                requested,
            } => write!(
                f,
                "schema mismatch: checkpoint was trained against {checkpoint}, \
                 requested schema is {requested}"
            ),
            CheckpointError::DimensionMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch: {what} should be {expected}, found {found}"
            ),
            CheckpointError::WrongKind { found, expected } => write!(
                f,
                "wrong checkpoint kind: expected `{expected}`, found `{found}`"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A versioned, self-describing envelope around a trained [`ZscModel`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Layout version; always [`CHECKPOINT_FORMAT_VERSION`] when written by
    /// this build.
    pub format_version: u32,
    /// The configuration the model was constructed from.
    pub model_config: ModelConfig,
    /// Backbone feature width `d'` the model ingests.
    pub feature_dim: usize,
    /// Shape of the attribute schema the model was trained against.
    pub schema: SchemaFingerprint,
    /// A fitted serve-time rejection threshold, if the model has been
    /// calibrated ([`SimilarityCalibrator`](crate::SimilarityCalibrator)).
    /// An *additive* field of the version-2 layout: documents written before
    /// calibration existed carry no `calibration` key and load as `None`,
    /// and an uncalibrated checkpoint writes no key, so its bytes are
    /// unchanged.
    pub calibration: Option<SimilarityCalibration>,
    /// The model weights.
    pub model: ZscModel,
}

/// Envelope layout, kept field-by-field so the optional `calibration` key
/// can stay additive — the derived impl would reject documents missing it.
impl Serialize for Checkpoint {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("format_version".to_string(), self.format_version.to_value()),
            ("model_config".to_string(), self.model_config.to_value()),
            ("feature_dim".to_string(), self.feature_dim.to_value()),
            ("schema".to_string(), self.schema.to_value()),
        ];
        if let Some(calibration) = &self.calibration {
            entries.push(("calibration".to_string(), calibration.to_value()));
        }
        entries.push(("model".to_string(), self.model.to_value()));
        Value::Object(entries)
    }
}

impl Deserialize for Checkpoint {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "Checkpoint")?;
        // Checkpoints written before calibration existed carry no
        // `calibration` key; treat a missing key exactly like an explicit
        // null.
        let calibration = match value.get("calibration") {
            None => None,
            Some(v) => Option::<SimilarityCalibration>::from_value(v)
                .map_err(|e| e.in_field("Checkpoint"))?,
        };
        Ok(Self {
            format_version: de::field(entries, "format_version", "Checkpoint")?,
            model_config: de::field(entries, "model_config", "Checkpoint")?,
            feature_dim: de::field(entries, "feature_dim", "Checkpoint")?,
            schema: de::field(entries, "schema", "Checkpoint")?,
            calibration,
            model: de::field(entries, "model", "Checkpoint")?,
        })
    }
}

impl Checkpoint {
    /// Captures a model (cloning its weights) together with the schema it
    /// was trained against.
    pub fn capture(model: &ZscModel, schema: &AttributeSchema) -> Self {
        Self {
            format_version: CHECKPOINT_FORMAT_VERSION,
            model_config: *model.config(),
            feature_dim: model.image_encoder().feature_dim(),
            schema: SchemaFingerprint::of(schema),
            calibration: None,
            model: model.clone(),
        }
    }

    /// Attaches a fitted rejection calibration to the checkpoint.
    pub fn with_calibration(mut self, calibration: SimilarityCalibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// Renders the checkpoint as pretty-printed JSON, always in the current
    /// layout (version [`CHECKPOINT_FORMAT_VERSION`], kind `"model"`) even
    /// if the checkpoint was loaded from a legacy document.
    pub fn to_json(&self) -> String {
        let mut entries = match Serialize::to_value(self) {
            Value::Object(entries) => entries,
            _ => unreachable!("checkpoints serialize as objects"),
        };
        for (key, value) in &mut entries {
            if key == "format_version" {
                *value = CHECKPOINT_FORMAT_VERSION.to_value();
            }
        }
        entries.insert(1, ("kind".to_string(), KIND_MODEL.to_string().to_value()));
        serde_json::to_string_pretty(&Value::Object(entries))
            .expect("checkpoint serialization is infallible")
    }

    /// Writes the checkpoint as JSON to `path` **atomically**: the document
    /// goes to a sibling `<name>.tmp` file first, is fsynced, and is then
    /// `rename`d over `path`, so a crash mid-save leaves any previous
    /// checkpoint at `path` intact — a partial temp file can never shadow a
    /// valid checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the file cannot be written.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        atomic_write(path.as_ref(), &self.to_json()).map_err(CheckpointError::from)
    }

    /// Parses a checkpoint from a JSON string.
    ///
    /// The format version is checked *before* the model payload is decoded,
    /// so documents written by a future layout fail with
    /// [`CheckpointError::UnsupportedVersion`] rather than a decoding error.
    /// Both the current layout (version 2, `kind: "model"`) and the legacy
    /// version-1 layout (no `kind` field) are accepted.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Malformed`] for syntactically or
    /// structurally invalid documents,
    /// [`CheckpointError::UnsupportedVersion`] for version mismatches, and
    /// [`CheckpointError::WrongKind`] when the document is a different
    /// envelope (e.g. a serve-time [`CheckpointDelta`]).
    pub fn from_json_str(json: &str) -> Result<Self, CheckpointError> {
        let value =
            serde_json::parse_value(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let found = envelope_version(&value)?;
        // Version 1 predates the `kind` discriminator; every v1 document is
        // a model checkpoint by construction.
        if found > CHECKPOINT_LEGACY_FORMAT_VERSION {
            expect_kind(&value, KIND_MODEL)?;
        }
        let checkpoint: Checkpoint = serde_json::from_value(&value)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        checkpoint.validate_internal()?;
        Ok(checkpoint)
    }

    /// Reads and parses a checkpoint from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on read failures, plus everything
    /// [`Checkpoint::from_json_str`] reports.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json_str(&json)
    }

    /// Checks the checkpoint against the schema the caller intends to serve.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::SchemaMismatch`] if the fingerprints
    /// disagree.
    pub fn validate_schema(&self, schema: &AttributeSchema) -> Result<(), CheckpointError> {
        let requested = SchemaFingerprint::of(schema);
        if self.schema != requested {
            return Err(CheckpointError::SchemaMismatch {
                checkpoint: self.schema,
                requested,
            });
        }
        Ok(())
    }

    /// Consumes the checkpoint and hands back the model, after validating it
    /// against the serving schema.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::SchemaMismatch`] if the schema fingerprints
    /// disagree.
    pub fn into_model(self, schema: &AttributeSchema) -> Result<ZscModel, CheckpointError> {
        self.validate_schema(schema)?;
        Ok(self.model)
    }

    /// Consumes the checkpoint straight into an immutable
    /// [`FrozenModel`](crate::FrozenModel), after validating it against the
    /// serving schema — the load path of the serving layer: no intermediate
    /// mutable model, no extra copy.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::SchemaMismatch`] if the schema fingerprints
    /// disagree.
    pub fn into_frozen(
        self,
        schema: &AttributeSchema,
    ) -> Result<crate::FrozenModel, CheckpointError> {
        self.into_model(schema).map(crate::FrozenModel::new)
    }

    /// Envelope-level consistency: the fields outside the model payload must
    /// agree with the payload itself.
    fn validate_internal(&self) -> Result<(), CheckpointError> {
        let model_feature_dim = self.model.image_encoder().feature_dim();
        if self.feature_dim != model_feature_dim {
            return Err(CheckpointError::DimensionMismatch {
                what: "backbone feature width",
                expected: self.feature_dim,
                found: model_feature_dim,
            });
        }
        if self.schema.attributes != self.model.phase2_dictionary().rows() {
            return Err(CheckpointError::DimensionMismatch {
                what: "attribute count α",
                expected: self.schema.attributes,
                found: self.model.phase2_dictionary().rows(),
            });
        }
        // The attribute encoder itself must ingest α-wide class-attribute
        // matrices too; without this check an internally-consistent but
        // differently-sized encoder would pass load and panic at first
        // query instead of failing typed.
        let encoder_alpha = self.model.attribute_encoder().num_attributes();
        if self.schema.attributes != encoder_alpha {
            return Err(CheckpointError::DimensionMismatch {
                what: "attribute encoder α",
                expected: self.schema.attributes,
                found: encoder_alpha,
            });
        }
        if self.model_config != *self.model.config() {
            return Err(CheckpointError::Malformed(
                "envelope model_config disagrees with the model payload".to_string(),
            ));
        }
        if let Some(calibration) = &self.calibration {
            if !calibration.threshold.is_finite() {
                return Err(CheckpointError::Malformed(
                    "calibration threshold must be finite".to_string(),
                ));
            }
            if !(0.0..1.0).contains(&calibration.target_false_reject) {
                return Err(CheckpointError::Malformed(
                    "calibration target false-reject rate must lie in [0, 1)".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// Reads and validates the `format_version` of an envelope document,
/// accepting the current and the legacy layout.
fn envelope_version(value: &Value) -> Result<u32, CheckpointError> {
    let version_value = value
        .get("format_version")
        .ok_or_else(|| CheckpointError::Malformed("missing `format_version`".to_string()))?;
    let found = serde_json::from_value::<u32>(version_value)
        .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    if found != CHECKPOINT_FORMAT_VERSION && found != CHECKPOINT_LEGACY_FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found,
            supported: CHECKPOINT_FORMAT_VERSION,
        });
    }
    Ok(found)
}

/// Checks the `kind` discriminator of a current-layout envelope document.
fn expect_kind(value: &Value, expected: &'static str) -> Result<(), CheckpointError> {
    let kind_value = value
        .get("kind")
        .ok_or_else(|| CheckpointError::Malformed("missing `kind`".to_string()))?;
    let found = serde_json::from_value::<String>(kind_value)
        .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    if found != expected {
        return Err(CheckpointError::WrongKind { found, expected });
    }
    Ok(())
}

/// Writes `contents` to `path` atomically: sibling `<name>.tmp` file,
/// fsync, `rename` over the destination, best-effort directory fsync. A
/// crash at any point leaves either the old file or the new one — never a
/// torn mix.
fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself; failure to fsync the directory only delays
    // durability, it cannot tear the file, so it is best-effort.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// Continual-learning stream state captured inside a [`CheckpointDelta`]:
/// the exact per-class prototype counters plus the publication batching
/// position at compaction time.
///
/// The counters are the ground truth of streamed learning — prototypes are
/// re-derived from them by re-signing, so persisting them exactly (i32
/// sums, observation counts) makes recovery counter-exact even when the
/// compaction base was written mid-batch: `pending` names the classes whose
/// counters have changed since their last publication, and `since_publish`
/// is how far the automatic `publish_every` cadence had advanced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Exact per-class bundling counters (see [`hdc::ClassAccumulator`]).
    pub accumulators: hdc::ClassAccumulator,
    /// Labels observed since their last publication, in sorted order —
    /// the classes the next publication boundary will re-sign.
    pub pending: Vec<String>,
    /// Observes folded since the last publication boundary; the automatic
    /// boundary fires when this reaches the server's `publish_every`.
    pub since_publish: u64,
}

/// A serve-time compaction base: a model [`Checkpoint`] plus the exact
/// sharded class memory at a known snapshot version, with the write-ahead
/// log sequence number the memory already folds in.
///
/// This is the "checkpoint delta" half of the serving layer's durability
/// contract (`serve::wal`): recovery loads the delta, rebuilds the class
/// memory bit-identically (shard assignment included, see
/// [`ShardedClassMemory`]'s serde docs), and replays only WAL records with
/// `seq >= next_record_seq` on top.
///
/// Serialized as a version-2 envelope with `kind: "serve-delta"`, so it can
/// never be confused with a plain model checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointDelta {
    /// Snapshot version of the serving memory at capture time; recovery
    /// resumes version numbering from here.
    pub snapshot_version: u64,
    /// The WAL sequence number of the first record *not* folded into
    /// `memory` — replay applies records with `seq >= next_record_seq`.
    pub next_record_seq: u64,
    /// The model that encodes class attributes into prototypes.
    pub base: Checkpoint,
    /// The exact sharded class memory at capture time.
    pub memory: ShardedClassMemory,
    /// The exact routed coarse-to-fine index at capture time, for servers
    /// running in routed mode. Routing structure evolves *incrementally*
    /// under class mutations, so it cannot be re-derived from `memory`
    /// alone — the delta captures it exactly (cluster assignment, centroids,
    /// drift counter) so recovery resumes the identical index. Absent for
    /// non-routed servers and in deltas written before routed serving
    /// existed; both load as `None`.
    pub routed: Option<RoutedClassMemory>,
    /// The serve-time rejection threshold active at capture time, set and
    /// cleared over the wire mid-traffic (so it can differ from the base
    /// checkpoint's fitted calibration). Additive like `routed`: deltas
    /// written before open-set serving existed carry no `threshold` key and
    /// load as `None`.
    pub threshold: Option<f32>,
    /// Continual-learning stream state at capture time: exact per-class
    /// prototype counters plus the publication batching position. Additive
    /// like `routed`: deltas written before streaming existed (or by
    /// servers that never observed an example) carry no `stream` key and
    /// load as `None`.
    pub stream: Option<StreamCheckpoint>,
}

impl CheckpointDelta {
    /// Renders the delta as pretty-printed JSON (version-2 envelope, kind
    /// `"serve-delta"`).
    pub fn to_json(&self) -> String {
        let value = Value::Object(vec![
            (
                "format_version".to_string(),
                CHECKPOINT_FORMAT_VERSION.to_value(),
            ),
            ("kind".to_string(), KIND_DELTA.to_string().to_value()),
            (
                "snapshot_version".to_string(),
                self.snapshot_version.to_value(),
            ),
            (
                "next_record_seq".to_string(),
                self.next_record_seq.to_value(),
            ),
            ("base".to_string(), Serialize::to_value(&self.base)),
            ("memory".to_string(), self.memory.to_value()),
            ("routed".to_string(), self.routed.to_value()),
            ("threshold".to_string(), self.threshold.to_value()),
            ("stream".to_string(), self.stream.to_value()),
        ]);
        serde_json::to_string_pretty(&value).expect("delta serialization is infallible")
    }

    /// Parses a delta from a JSON string, validating the envelope (version
    /// checked before the payload, kind must be `"serve-delta"`), the model
    /// payload, the memory's structural invariants, and that the memory's
    /// prototype dimensionality matches the model's embedding width.
    ///
    /// # Errors
    ///
    /// Everything [`Checkpoint::from_json_str`] reports, plus
    /// [`CheckpointError::DimensionMismatch`] when the memory does not fit
    /// the model.
    pub fn from_json_str(json: &str) -> Result<Self, CheckpointError> {
        let value =
            serde_json::parse_value(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let found = envelope_version(&value)?;
        if found == CHECKPOINT_LEGACY_FORMAT_VERSION {
            // Version 1 predates deltas entirely; a v1 document can only be
            // a model checkpoint.
            return Err(CheckpointError::WrongKind {
                found: KIND_MODEL.to_string(),
                expected: KIND_DELTA,
            });
        }
        expect_kind(&value, KIND_DELTA)?;
        let field = |name: &'static str| {
            value
                .get(name)
                .ok_or_else(|| CheckpointError::Malformed(format!("missing `{name}`")))
        };
        let snapshot_version = serde_json::from_value::<u64>(field("snapshot_version")?)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let next_record_seq = serde_json::from_value::<u64>(field("next_record_seq")?)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let base = serde_json::from_value::<Checkpoint>(field("base")?)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        base.validate_internal()?;
        let memory = serde_json::from_value::<ShardedClassMemory>(field("memory")?)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        // Deltas written before routed serving carry no `routed` key; treat
        // a missing key exactly like an explicit null.
        let routed = match value.get("routed") {
            None => None,
            Some(v) => serde_json::from_value::<Option<RoutedClassMemory>>(v)
                .map_err(|e| CheckpointError::Malformed(e.to_string()))?,
        };
        if let Some(routed) = &routed {
            if routed.dim() != memory.dim() {
                return Err(CheckpointError::DimensionMismatch {
                    what: "routed index dimensionality",
                    expected: memory.dim(),
                    found: routed.dim(),
                });
            }
        }
        // Like `routed`, `threshold` is additive: deltas from before open-set
        // serving carry no key, which loads the same as an explicit null.
        let threshold = match value.get("threshold") {
            None => None,
            Some(v) => serde_json::from_value::<Option<f32>>(v)
                .map_err(|e| CheckpointError::Malformed(e.to_string()))?,
        };
        if let Some(threshold) = threshold {
            if !threshold.is_finite() {
                return Err(CheckpointError::Malformed(
                    "serve threshold must be finite".to_string(),
                ));
            }
        }
        // `stream` is additive the same way: older deltas carry no key.
        let stream = match value.get("stream") {
            None => None,
            Some(v) => serde_json::from_value::<Option<StreamCheckpoint>>(v)
                .map_err(|e| CheckpointError::Malformed(e.to_string()))?,
        };
        if let Some(stream) = &stream {
            if stream.accumulators.dim() != memory.dim() {
                return Err(CheckpointError::DimensionMismatch {
                    what: "stream accumulator dimensionality",
                    expected: memory.dim(),
                    found: stream.accumulators.dim(),
                });
            }
            for label in &stream.pending {
                if !stream.accumulators.contains(label) {
                    return Err(CheckpointError::Malformed(format!(
                        "stream pending label `{label}` has no accumulator"
                    )));
                }
            }
        }
        if memory.dim() != base.model.embedding_dim() {
            return Err(CheckpointError::DimensionMismatch {
                what: "class prototype dimensionality",
                expected: base.model.embedding_dim(),
                found: memory.dim(),
            });
        }
        Ok(Self {
            snapshot_version,
            next_record_seq,
            base,
            memory,
            routed,
            threshold,
            stream,
        })
    }

    /// Writes the delta as JSON to `path` atomically (same temp-then-rename
    /// contract as [`Checkpoint::save_json`]).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the file cannot be written.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        atomic_write(path.as_ref(), &self.to_json()).map_err(CheckpointError::from)
    }

    /// Reads and parses a delta from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on read failures, plus everything
    /// [`CheckpointDelta::from_json_str`] reports.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json_str(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute_encoder::AttributeEncoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Matrix;

    fn schema() -> AttributeSchema {
        AttributeSchema::cub200()
    }

    fn fixture_model(kind: AttributeEncoderKind) -> ZscModel {
        ZscModel::new(
            &ModelConfig::tiny()
                .with_attribute_encoder(kind)
                .with_seed(7),
            &schema(),
            48,
        )
    }

    #[test]
    fn round_trip_preserves_logits_bit_exactly() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(1);
        let features = Matrix::random_uniform(4, 48, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(6, 312, 0.5, &mut rng).map(f32::abs);
        for kind in [
            AttributeEncoderKind::Hdc,
            AttributeEncoderKind::TrainableMlp,
        ] {
            let model = fixture_model(kind);
            let json = Checkpoint::capture(&model, &s).to_json();
            let restored = Checkpoint::from_json_str(&json)
                .and_then(|c| c.into_frozen(&s))
                .expect("round trip");
            let original = model.class_logits(&features, &class_attributes);
            let loaded = restored.class_logits(&features, &class_attributes);
            assert_eq!(original.as_slice(), loaded.as_slice(), "{kind}");
            let original_attr = model.attribute_logits(&features);
            let loaded_attr = restored.attribute_logits(&features);
            assert_eq!(original_attr.as_slice(), loaded_attr.as_slice(), "{kind}");
        }
    }

    #[test]
    fn wrong_version_is_rejected_before_the_payload() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let json = Checkpoint::capture(&model, &s)
            .to_json()
            .replace("\"format_version\": 2", "\"format_version\": 99");
        match Checkpoint::from_json_str(&json) {
            Err(CheckpointError::UnsupportedVersion {
                found: 99,
                supported,
            }) => {
                assert_eq!(supported, CHECKPOINT_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    /// A legacy version-1 document — no `kind` field, `format_version: 1` —
    /// must still load; v1 checkpoints predate the kind discriminator.
    #[test]
    fn legacy_version_1_documents_still_load() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let v2 = Checkpoint::capture(&model, &s).to_json();
        // Drop only the envelope's own kind line (the model payload nests a
        // differently-indented `kind` of its own).
        let v1: String = v2
            .replace("\"format_version\": 2", "\"format_version\": 1")
            .lines()
            .filter(|line| *line != "  \"kind\": \"model\",")
            .collect::<Vec<_>>()
            .join("\n");
        let restored = Checkpoint::from_json_str(&v1).expect("legacy layout loads");
        assert_eq!(restored.format_version, 1);
        // Re-saving a legacy checkpoint writes the current layout.
        assert!(restored.to_json().contains("\"format_version\": 2"));
        assert!(restored.to_json().contains("\"kind\": \"model\""));
    }

    /// The additive `calibration` field: present it round-trips bit-exactly,
    /// absent (every pre-existing checkpoint) it loads as `None`, and an
    /// uncalibrated checkpoint writes no key at all.
    #[test]
    fn calibration_is_additive_and_round_trips_bit_exactly() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let uncalibrated = Checkpoint::capture(&model, &s);
        assert!(uncalibrated.calibration.is_none());
        assert!(!uncalibrated.to_json().contains("\"calibration\""));
        let restored =
            Checkpoint::from_json_str(&uncalibrated.to_json()).expect("uncalibrated loads");
        assert!(restored.calibration.is_none());

        let calibration = crate::SimilarityCalibrator::new(0.1).fit(&[0.2, 0.5, 0.9, 0.7]);
        let calibrated = Checkpoint::capture(&model, &s).with_calibration(calibration);
        let json = calibrated.to_json();
        assert!(json.contains("\"calibration\""));
        let restored = Checkpoint::from_json_str(&json).expect("calibrated loads");
        let restored_calibration = restored.calibration.expect("calibration survives");
        assert_eq!(
            restored_calibration.threshold.to_bits(),
            calibration.threshold.to_bits()
        );
        assert_eq!(restored_calibration, calibration);

        // A garbage threshold is a typed malformed-checkpoint error, not a
        // panic at first query.
        let bad = json.replace(
            &format!("\"threshold\": {}", calibration.threshold),
            "\"threshold\": null",
        );
        assert_ne!(bad, json);
        assert!(matches!(
            Checkpoint::from_json_str(&bad),
            Err(CheckpointError::Malformed(_))
        ));
    }

    /// A current-layout document with the wrong (or a missing) kind is a
    /// different envelope, not a malformed checkpoint.
    #[test]
    fn wrong_kind_is_rejected() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let json = Checkpoint::capture(&model, &s).to_json();
        let delta_kind = json.replace("\"kind\": \"model\"", "\"kind\": \"serve-delta\"");
        match Checkpoint::from_json_str(&delta_kind) {
            Err(CheckpointError::WrongKind { found, expected }) => {
                assert_eq!(found, "serve-delta");
                assert_eq!(expected, "model");
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
        let missing_kind: String = json
            .lines()
            .filter(|line| *line != "  \"kind\": \"model\",")
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            Checkpoint::from_json_str(&missing_kind),
            Err(CheckpointError::Malformed(_))
        ));
    }

    /// The satellite bugfix: saving goes through a temp file + rename, so a
    /// stale partial `.tmp` (a crashed half-save) never shadows the valid
    /// checkpoint, and a successful save cleans up after itself.
    #[test]
    fn save_is_atomic_and_partial_temp_files_never_shadow_a_checkpoint() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let checkpoint = Checkpoint::capture(&model, &s);
        let dir = std::env::temp_dir().join(format!("zsc-ckpt-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("ckpt.json");
        checkpoint.save_json(&path).expect("first save");
        assert!(!dir.join("ckpt.json.tmp").exists(), "temp file cleaned up");
        // Simulate a crash mid-save: a torn temp file next to the good one.
        std::fs::write(dir.join("ckpt.json.tmp"), "{\"format_version\": 2, \"ki")
            .expect("write torn temp");
        let restored = Checkpoint::load_json(&path).expect("good checkpoint untouched");
        assert_eq!(restored.feature_dim, checkpoint.feature_dim);
        // A subsequent save replaces both the torn temp and the file.
        checkpoint.save_json(&path).expect("second save");
        assert!(!dir.join("ckpt.json.tmp").exists());
        Checkpoint::load_json(&path).expect("still valid");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Delta round trip: memory (shard assignment included) and sequence
    /// bookkeeping survive bit-exactly, and the two envelope kinds cannot be
    /// confused for each other.
    #[test]
    fn delta_round_trips_and_kinds_do_not_cross() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let mut rng = StdRng::seed_from_u64(3);
        let class_attributes = Matrix::random_uniform(5, 312, 0.5, &mut rng).map(f32::abs);
        let labels: Vec<String> = (0..5).map(|c| format!("class{c}")).collect();
        let memory = model.sharded_class_memory(labels.clone(), &class_attributes, 3);
        let routed = model.routed_class_memory(
            labels,
            &class_attributes,
            engine::RoutedConfig {
                clusters: 2,
                ..engine::RoutedConfig::default()
            },
        );
        let mut accumulators = hdc::ClassAccumulator::new(memory.dim());
        let example = hdc::BipolarHypervector::random(memory.dim(), &mut rng);
        accumulators
            .observe("class1", &example)
            .expect("observe fits");
        let stream = StreamCheckpoint {
            accumulators,
            pending: vec!["class1".to_string()],
            since_publish: 1,
        };
        let delta = CheckpointDelta {
            snapshot_version: 41,
            next_record_seq: 17,
            base: Checkpoint::capture(&model, &s),
            memory: memory.clone(),
            routed: Some(routed.clone()),
            threshold: Some(0.314),
            stream: Some(stream.clone()),
        };
        let json = delta.to_json();
        let restored = CheckpointDelta::from_json_str(&json).expect("delta round trip");
        assert_eq!(restored.snapshot_version, 41);
        assert_eq!(restored.next_record_seq, 17);
        assert_eq!(restored.memory, memory);
        // The serve threshold round-trips bit-exactly, and a delta written
        // before the field existed still loads.
        assert_eq!(
            restored.threshold.map(f32::to_bits),
            Some(0.314f32.to_bits())
        );
        let legacy_threshold = json.replace("  \"threshold\":", "  \"legacy_threshold\":");
        assert_ne!(legacy_threshold, json);
        let restored =
            CheckpointDelta::from_json_str(&legacy_threshold).expect("legacy delta loads");
        assert!(restored.threshold.is_none());
        // The routed index survives exactly — structure, drift and all —
        // and a delta written without one (or before the field existed)
        // still loads.
        assert_eq!(restored.routed.as_ref(), Some(&routed));
        let legacy = json.replace("  \"routed\":", "  \"ignored\":");
        assert_ne!(legacy, json);
        let restored = CheckpointDelta::from_json_str(&legacy).expect("legacy delta loads");
        assert!(restored.routed.is_none());
        // Stream counters survive exactly (counts, observation tallies,
        // batching position), and pre-streaming deltas load as `None`.
        assert_eq!(restored.stream.as_ref(), Some(&stream));
        let legacy_stream = json.replace("  \"stream\":", "  \"pre_stream\":");
        assert_ne!(legacy_stream, json);
        let restored = CheckpointDelta::from_json_str(&legacy_stream).expect("legacy delta loads");
        assert!(restored.stream.is_none());
        let restored = CheckpointDelta::from_json_str(&json).expect("delta round trip");
        restored.base.validate_schema(&s).expect("schema preserved");
        // A delta is not a model checkpoint, and vice versa.
        assert!(matches!(
            Checkpoint::from_json_str(&json),
            Err(CheckpointError::WrongKind { .. })
        ));
        let model_json = Checkpoint::capture(&model, &s).to_json();
        assert!(matches!(
            CheckpointDelta::from_json_str(&model_json),
            Err(CheckpointError::WrongKind { .. })
        ));
        // A v1 document can only ever be a model checkpoint.
        let v1 = model_json.replace("\"format_version\": 2", "\"format_version\": 1");
        assert!(matches!(
            CheckpointDelta::from_json_str(&v1),
            Err(CheckpointError::WrongKind { .. })
        ));
    }

    /// Stream state is cross-validated against the memory it rides with: a
    /// counter set of the wrong dimensionality, or a pending label with no
    /// accumulator, is rejected instead of resurrected.
    #[test]
    fn delta_rejects_inconsistent_stream_state() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let mut rng = StdRng::seed_from_u64(5);
        let class_attributes = Matrix::random_uniform(3, 312, 0.5, &mut rng).map(f32::abs);
        let labels: Vec<String> = (0..3).map(|c| format!("class{c}")).collect();
        let memory = model.sharded_class_memory(labels, &class_attributes, 2);
        let delta = |stream| CheckpointDelta {
            snapshot_version: 0,
            next_record_seq: 0,
            base: Checkpoint::capture(&model, &s),
            memory: memory.clone(),
            routed: None,
            threshold: None,
            stream: Some(stream),
        };
        // Wrong dimensionality.
        let mut narrow = hdc::ClassAccumulator::new(memory.dim() / 2);
        narrow
            .observe(
                "class0",
                &hdc::BipolarHypervector::random(memory.dim() / 2, &mut rng),
            )
            .expect("observe fits");
        let json = delta(StreamCheckpoint {
            accumulators: narrow,
            pending: Vec::new(),
            since_publish: 0,
        })
        .to_json();
        assert!(matches!(
            CheckpointDelta::from_json_str(&json),
            Err(CheckpointError::DimensionMismatch {
                what: "stream accumulator dimensionality",
                ..
            })
        ));
        // Pending label with no counters behind it.
        let json = delta(StreamCheckpoint {
            accumulators: hdc::ClassAccumulator::new(memory.dim()),
            pending: vec!["ghost".to_string()],
            since_publish: 1,
        })
        .to_json();
        assert!(matches!(
            CheckpointDelta::from_json_str(&json),
            Err(CheckpointError::Malformed(reason)) if reason.contains("ghost")
        ));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let checkpoint = Checkpoint::capture(&model, &s);
        let other = AttributeSchema::synthetic(4, 5);
        assert!(matches!(
            checkpoint.validate_schema(&other),
            Err(CheckpointError::SchemaMismatch { .. })
        ));
        assert!(matches!(
            checkpoint.into_model(&other),
            Err(CheckpointError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn io_errors_are_typed() {
        let missing = Checkpoint::load_json("/nonexistent/dir/ckpt.json");
        assert!(matches!(missing, Err(CheckpointError::Io(_))));
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let bad_path = Checkpoint::capture(&model, &s).save_json("/nonexistent/dir/ckpt.json");
        assert!(matches!(bad_path, Err(CheckpointError::Io(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let err = CheckpointError::UnsupportedVersion {
            found: 2,
            supported: 1,
        };
        assert!(err.to_string().contains("version 2"));
        let err = CheckpointError::DimensionMismatch {
            what: "embedding dim",
            expected: 64,
            found: 32,
        };
        assert!(err.to_string().contains("embedding dim"));
    }
}
