//! Model checkpointing: a versioned JSON envelope around a trained
//! [`ZscModel`], so models are trained once and served many times.
//!
//! A [`Checkpoint`] pins three things next to the model weights:
//!
//! * a **format version**, checked *before* the model payload is decoded so
//!   future layout changes fail fast with a typed error;
//! * the **model configuration** the model was built from;
//! * a **schema fingerprint** (`G`/`V`/`α` counts), so a checkpoint trained
//!   against one attribute schema cannot be silently served against another.
//!
//! Loading validates dimensions and invariants end to end (see the
//! hand-written `Deserialize` impls on the model parts) and reports every
//! failure as a [`CheckpointError`] instead of panicking. Derived state —
//! gradient buffers, similarity-kernel caches, the engine's packed class
//! memories, thread pools — is intentionally not persisted and is rebuilt on
//! load.
//!
//! # Example
//!
//! ```
//! use dataset::AttributeSchema;
//! use hdc_zsc::{Checkpoint, ModelConfig, ZscModel};
//!
//! let schema = AttributeSchema::cub200();
//! let model = ZscModel::new(&ModelConfig::tiny(), &schema, 48);
//! let checkpoint = Checkpoint::capture(&model, &schema);
//! let json = checkpoint.to_json();
//! let restored = Checkpoint::from_json_str(&json)
//!     .and_then(|c| c.into_model(&schema))
//!     .expect("round trip");
//! assert_eq!(restored.embedding_dim(), 64);
//! ```

use crate::config::ModelConfig;
use crate::model::ZscModel;
use dataset::AttributeSchema;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Version of the on-disk checkpoint layout produced by this crate.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// The attribute-schema shape a checkpoint was trained against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaFingerprint {
    /// Number of attribute groups (`G`).
    pub groups: usize,
    /// Number of unique attribute values (`V`).
    pub values: usize,
    /// Number of attributes (`α`).
    pub attributes: usize,
}

impl SchemaFingerprint {
    /// The fingerprint of a concrete schema.
    pub fn of(schema: &AttributeSchema) -> Self {
        Self {
            groups: schema.num_groups(),
            values: schema.num_values(),
            attributes: schema.num_attributes(),
        }
    }
}

impl std::fmt::Display for SchemaFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "G={} V={} α={}",
            self.groups, self.values, self.attributes
        )
    }
}

/// Why a checkpoint could not be saved or loaded.
///
/// Marked `#[non_exhaustive]`: future layouts may add failure modes, so
/// downstream matches must keep a wildcard arm.
#[derive(Debug)]
#[must_use = "a checkpoint error describes why the model cannot be served and should be handled"]
#[non_exhaustive]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The document is not valid JSON or does not decode into a checkpoint.
    Malformed(String),
    /// The document declares a layout version this build cannot read.
    UnsupportedVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The checkpoint was trained against a different attribute schema.
    SchemaMismatch {
        /// Fingerprint stored in the checkpoint.
        checkpoint: SchemaFingerprint,
        /// Fingerprint of the schema the caller wants to serve.
        requested: SchemaFingerprint,
    },
    /// Two parts of the checkpoint disagree about a dimension.
    DimensionMismatch {
        /// Which dimension disagrees.
        what: &'static str,
        /// Value implied by one part.
        expected: usize,
        /// Value found in the other.
        found: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {supported})"
            ),
            CheckpointError::SchemaMismatch {
                checkpoint,
                requested,
            } => write!(
                f,
                "schema mismatch: checkpoint was trained against {checkpoint}, \
                 requested schema is {requested}"
            ),
            CheckpointError::DimensionMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch: {what} should be {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A versioned, self-describing envelope around a trained [`ZscModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Layout version; always [`CHECKPOINT_FORMAT_VERSION`] when written by
    /// this build.
    pub format_version: u32,
    /// The configuration the model was constructed from.
    pub model_config: ModelConfig,
    /// Backbone feature width `d'` the model ingests.
    pub feature_dim: usize,
    /// Shape of the attribute schema the model was trained against.
    pub schema: SchemaFingerprint,
    /// The model weights.
    pub model: ZscModel,
}

impl Checkpoint {
    /// Captures a model (cloning its weights) together with the schema it
    /// was trained against.
    pub fn capture(model: &ZscModel, schema: &AttributeSchema) -> Self {
        Self {
            format_version: CHECKPOINT_FORMAT_VERSION,
            model_config: *model.config(),
            feature_dim: model.image_encoder().feature_dim(),
            schema: SchemaFingerprint::of(schema),
            model: model.clone(),
        }
    }

    /// Renders the checkpoint as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serialization is infallible")
    }

    /// Writes the checkpoint as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the file cannot be written.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_json()).map_err(CheckpointError::from)
    }

    /// Parses a checkpoint from a JSON string.
    ///
    /// The format version is checked *before* the model payload is decoded,
    /// so documents written by a future layout fail with
    /// [`CheckpointError::UnsupportedVersion`] rather than a decoding error.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Malformed`] for syntactically or
    /// structurally invalid documents and
    /// [`CheckpointError::UnsupportedVersion`] for version mismatches.
    pub fn from_json_str(json: &str) -> Result<Self, CheckpointError> {
        let value =
            serde_json::parse_value(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let version_value = value
            .get("format_version")
            .ok_or_else(|| CheckpointError::Malformed("missing `format_version`".to_string()))?;
        let found = serde_json::from_value::<u32>(version_value)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if found != CHECKPOINT_FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found,
                supported: CHECKPOINT_FORMAT_VERSION,
            });
        }
        let checkpoint: Checkpoint = serde_json::from_value(&value)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        checkpoint.validate_internal()?;
        Ok(checkpoint)
    }

    /// Reads and parses a checkpoint from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on read failures, plus everything
    /// [`Checkpoint::from_json_str`] reports.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json_str(&json)
    }

    /// Checks the checkpoint against the schema the caller intends to serve.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::SchemaMismatch`] if the fingerprints
    /// disagree.
    pub fn validate_schema(&self, schema: &AttributeSchema) -> Result<(), CheckpointError> {
        let requested = SchemaFingerprint::of(schema);
        if self.schema != requested {
            return Err(CheckpointError::SchemaMismatch {
                checkpoint: self.schema,
                requested,
            });
        }
        Ok(())
    }

    /// Consumes the checkpoint and hands back the model, after validating it
    /// against the serving schema.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::SchemaMismatch`] if the schema fingerprints
    /// disagree.
    pub fn into_model(self, schema: &AttributeSchema) -> Result<ZscModel, CheckpointError> {
        self.validate_schema(schema)?;
        Ok(self.model)
    }

    /// Consumes the checkpoint straight into an immutable
    /// [`FrozenModel`](crate::FrozenModel), after validating it against the
    /// serving schema — the load path of the serving layer: no intermediate
    /// mutable model, no extra copy.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::SchemaMismatch`] if the schema fingerprints
    /// disagree.
    pub fn into_frozen(
        self,
        schema: &AttributeSchema,
    ) -> Result<crate::FrozenModel, CheckpointError> {
        self.into_model(schema).map(crate::FrozenModel::new)
    }

    /// Envelope-level consistency: the fields outside the model payload must
    /// agree with the payload itself.
    fn validate_internal(&self) -> Result<(), CheckpointError> {
        let model_feature_dim = self.model.image_encoder().feature_dim();
        if self.feature_dim != model_feature_dim {
            return Err(CheckpointError::DimensionMismatch {
                what: "backbone feature width",
                expected: self.feature_dim,
                found: model_feature_dim,
            });
        }
        if self.schema.attributes != self.model.phase2_dictionary().rows() {
            return Err(CheckpointError::DimensionMismatch {
                what: "attribute count α",
                expected: self.schema.attributes,
                found: self.model.phase2_dictionary().rows(),
            });
        }
        // The attribute encoder itself must ingest α-wide class-attribute
        // matrices too; without this check an internally-consistent but
        // differently-sized encoder would pass load and panic at first
        // query instead of failing typed.
        let encoder_alpha = self.model.attribute_encoder().num_attributes();
        if self.schema.attributes != encoder_alpha {
            return Err(CheckpointError::DimensionMismatch {
                what: "attribute encoder α",
                expected: self.schema.attributes,
                found: encoder_alpha,
            });
        }
        if self.model_config != *self.model.config() {
            return Err(CheckpointError::Malformed(
                "envelope model_config disagrees with the model payload".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute_encoder::AttributeEncoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Matrix;

    fn schema() -> AttributeSchema {
        AttributeSchema::cub200()
    }

    fn fixture_model(kind: AttributeEncoderKind) -> ZscModel {
        ZscModel::new(
            &ModelConfig::tiny()
                .with_attribute_encoder(kind)
                .with_seed(7),
            &schema(),
            48,
        )
    }

    #[test]
    fn round_trip_preserves_logits_bit_exactly() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(1);
        let features = Matrix::random_uniform(4, 48, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(6, 312, 0.5, &mut rng).map(f32::abs);
        for kind in [
            AttributeEncoderKind::Hdc,
            AttributeEncoderKind::TrainableMlp,
        ] {
            let model = fixture_model(kind);
            let json = Checkpoint::capture(&model, &s).to_json();
            let restored = Checkpoint::from_json_str(&json)
                .and_then(|c| c.into_frozen(&s))
                .expect("round trip");
            let original = model.class_logits(&features, &class_attributes);
            let loaded = restored.class_logits(&features, &class_attributes);
            assert_eq!(original.as_slice(), loaded.as_slice(), "{kind}");
            let original_attr = model.attribute_logits(&features);
            let loaded_attr = restored.attribute_logits(&features);
            assert_eq!(original_attr.as_slice(), loaded_attr.as_slice(), "{kind}");
        }
    }

    #[test]
    fn wrong_version_is_rejected_before_the_payload() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let json = Checkpoint::capture(&model, &s)
            .to_json()
            .replace("\"format_version\": 1", "\"format_version\": 99");
        match Checkpoint::from_json_str(&json) {
            Err(CheckpointError::UnsupportedVersion {
                found: 99,
                supported,
            }) => {
                assert_eq!(supported, CHECKPOINT_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let checkpoint = Checkpoint::capture(&model, &s);
        let other = AttributeSchema::synthetic(4, 5);
        assert!(matches!(
            checkpoint.validate_schema(&other),
            Err(CheckpointError::SchemaMismatch { .. })
        ));
        assert!(matches!(
            checkpoint.into_model(&other),
            Err(CheckpointError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn io_errors_are_typed() {
        let missing = Checkpoint::load_json("/nonexistent/dir/ckpt.json");
        assert!(matches!(missing, Err(CheckpointError::Io(_))));
        let s = schema();
        let model = fixture_model(AttributeEncoderKind::Hdc);
        let bad_path = Checkpoint::capture(&model, &s).save_json("/nonexistent/dir/ckpt.json");
        assert!(matches!(bad_path, Err(CheckpointError::Io(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let err = CheckpointError::UnsupportedVersion {
            found: 2,
            supported: 1,
        };
        assert!(err.to_string().contains("version 2"));
        let err = CheckpointError::DimensionMismatch {
            what: "embedding dim",
            expected: 64,
            found: 32,
        };
        assert!(err.to_string().contains("embedding dim"));
    }
}
