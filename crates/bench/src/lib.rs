//! Shared utilities for the experiment harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artefact:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `table1` | Table I — attribute extraction per group vs Finetag/A3M |
//! | `table2_ablation` | Table II — image/attribute encoder ablation |
//! | `fig4_pareto` | Fig. 4 — accuracy vs parameter count Pareto plot |
//! | `fig5_hparam` | Fig. 5 — hyper-parameter sweeps on the validation split |
//! | `memory_footprint` | §III-A memory-reduction claim (71% / 17 KB) |
//! | `binding_ablation` | extra ablation: binding variants and dimensionality |
//!
//! Every harness accepts `--seeds N` (number of trials, default 3), `--full`
//! (full CUB-scale dataset — slow) and `--json PATH` (machine-readable result
//! dump); without `--full` the *reduced* dataset documented in
//! `EXPERIMENTS.md` is used so a complete run finishes in minutes on a
//! laptop.

#![deny(missing_docs)]
#![warn(clippy::all)]

use dataset::{DatasetConfig, InstanceNoise};
use serde::Serialize;
use std::path::PathBuf;
use tensor::Summary;

/// Command-line options shared by all experiment harnesses.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Number of random seeds/trials to run.
    pub seeds: usize,
    /// Use the full CUB-scale dataset (slow) instead of the reduced one.
    pub full: bool,
    /// Extra-small configuration for smoke tests.
    pub quick: bool,
    /// Optional path to write a JSON result dump to.
    pub json: Option<PathBuf>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        Self {
            seeds: 3,
            full: false,
            quick: false,
            json: None,
        }
    }
}

impl ExperimentArgs {
    /// Parses the recognised flags from an iterator of CLI arguments,
    /// ignoring the binary name. Unrecognised flags abort with a usage
    /// message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--seeds" => {
                    let value = iter
                        .next()
                        .unwrap_or_else(|| usage("--seeds needs a value"));
                    parsed.seeds = value
                        .parse()
                        .unwrap_or_else(|_| usage("--seeds expects an integer"));
                }
                "--full" => parsed.full = true,
                "--quick" => parsed.quick = true,
                "--json" => {
                    let value = iter.next().unwrap_or_else(|| usage("--json needs a path"));
                    parsed.json = Some(PathBuf::from(value));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unrecognised flag '{other}'")),
            }
        }
        parsed.seeds = parsed.seeds.max(1);
        parsed
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Seed list for the configured number of trials.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds as u64).collect()
    }

    /// The dataset configuration implied by the flags.
    ///
    /// All scales use the *fine-grained* regime calibrated with the
    /// `calibrate` harness (classes organised into families that differ in
    /// only two attribute groups, elevated backbone/annotation noise), which
    /// keeps accuracies in the paper's 50–70% range instead of saturating;
    /// see `EXPERIMENTS.md`. The reduced (default) configuration keeps the
    /// full 200-class split protocol but uses fewer images per class and
    /// 256-dimensional simulated features so a complete run finishes in
    /// minutes.
    pub fn dataset_config(&self, seed: u64) -> DatasetConfig {
        let noise = InstanceNoise {
            flip_prob: 0.30,
            dropout_prob: 0.10,
        };
        if self.full {
            let mut cfg = DatasetConfig::cub200_full(seed).with_families(40, 2);
            cfg.feature_noise_scale = 2.5;
            cfg.noise = noise;
            cfg
        } else if self.quick {
            let mut cfg = DatasetConfig::tiny(seed).with_families(10, 2);
            cfg.num_classes = 40;
            cfg.images_per_class = 8;
            cfg.feature_dim = 128;
            cfg.feature_noise_scale = 2.0;
            cfg.noise = InstanceNoise {
                flip_prob: 0.25,
                dropout_prob: 0.10,
            };
            cfg
        } else {
            let mut cfg = DatasetConfig::reduced(seed).with_families(30, 2);
            cfg.feature_noise_scale = 2.5;
            cfg.noise = noise;
            cfg
        }
    }

    /// Embedding dimension to use for the paper's preferred configuration
    /// under this scale (1536 at full scale, smaller otherwise so the FC
    /// projection stays proportionate to the simulated feature width).
    pub fn embedding_dim(&self) -> usize {
        if self.full {
            1536
        } else if self.quick {
            96
        } else {
            192
        }
    }

    /// Label describing the scale, recorded in result dumps.
    pub fn scale_label(&self) -> &'static str {
        if self.full {
            "full"
        } else if self.quick {
            "quick"
        } else {
            "reduced"
        }
    }
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!("usage: <harness> [--seeds N] [--full] [--quick] [--json PATH]");
    std::process::exit(2);
}

/// Prints a Markdown-style table: a header row followed by aligned rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let format_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{c:<width$}",
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", format_row(&header_cells));
    let divider: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", format_row(&divider));
    for row in rows {
        println!("{}", format_row(row));
    }
}

/// Formats a [`Summary`] as `µ ± σ` with one decimal, the reporting style of
/// the paper.
pub fn format_summary(summary: &Summary) -> String {
    format!("{:.1} ± {:.1}", summary.mean(), summary.std())
}

/// Writes a serialisable result structure as pretty JSON to `path` (if
/// provided), reporting any I/O failure on stderr without aborting the
/// experiment.
pub fn maybe_write_json<T: Serialize>(path: &Option<PathBuf>, value: &T) {
    if let Some(path) = path {
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(err) = std::fs::write(path, json) {
                    eprintln!("warning: could not write {}: {err}", path.display());
                } else {
                    println!("\nwrote results to {}", path.display());
                }
            }
            Err(err) => eprintln!("warning: could not serialise results: {err}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> ExperimentArgs {
        ExperimentArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_args() {
        let a = args(&[]);
        assert_eq!(a, ExperimentArgs::default());
        assert_eq!(a.seeds, 3);
        assert!(!a.full);
        assert_eq!(a.seed_list(), vec![0, 1, 2]);
        assert_eq!(a.scale_label(), "reduced");
    }

    #[test]
    fn parse_flags() {
        let a = args(&["--seeds", "5", "--full", "--json", "/tmp/out.json"]);
        assert_eq!(a.seeds, 5);
        assert!(a.full);
        assert_eq!(a.json, Some(PathBuf::from("/tmp/out.json")));
        assert_eq!(a.scale_label(), "full");
        assert_eq!(a.embedding_dim(), 1536);
        assert_eq!(a.dataset_config(0).num_classes, 200);
    }

    #[test]
    fn quick_scale_is_smaller_than_reduced() {
        let quick = args(&["--quick"]);
        let reduced = args(&[]);
        assert!(quick.dataset_config(0).total_images() < reduced.dataset_config(0).total_images());
        assert!(quick.embedding_dim() < reduced.embedding_dim());
        assert_eq!(quick.scale_label(), "quick");
    }

    #[test]
    fn seeds_are_clamped_to_at_least_one() {
        let a = args(&["--seeds", "0"]);
        assert_eq!(a.seeds, 1);
    }

    #[test]
    fn format_summary_style() {
        let s = Summary::from_samples(&[63.0, 64.0]);
        assert_eq!(format_summary(&s), "63.5 ± 0.5");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
    }

    #[test]
    fn json_write_roundtrip() {
        let path = std::env::temp_dir().join("bench_json_test.json");
        maybe_write_json(&Some(path.clone()), &vec![1, 2, 3]);
        let body = std::fs::read_to_string(&path).expect("written");
        assert!(body.contains('1'));
        let _ = std::fs::remove_file(path);
        // None path is a no-op.
        maybe_write_json::<Vec<u8>>(&None, &vec![]);
    }
}
