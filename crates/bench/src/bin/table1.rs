//! **Table I** — attribute-extraction comparison.
//!
//! Trains HDC-ZSC through phases II+III on the noZS split (the supervised
//! protocol used by the Finetag / A3M baselines), evaluates the
//! attribute-extraction metrics per attribute group, and prints the Table I
//! layout: Finetag WMAP (literature) vs ours (measured) and A3M top-1
//! (literature) vs ours (measured).

use baselines::reference::attribute_extraction_references;
use bench::{format_summary, maybe_write_json, print_table, ExperimentArgs};
use dataset::{CubLikeDataset, SplitKind};
use hdc_zsc::{ModelConfig, Pipeline, TrainConfig};
use metrics::SeedAggregate;
use serde::Serialize;

#[derive(Serialize)]
struct GroupRow {
    group: String,
    finetag_wmap: f32,
    ours_wmap_mean: f32,
    ours_wmap_std: f32,
    a3m_top1: f32,
    ours_top1_mean: f32,
    ours_top1_std: f32,
}

#[derive(Serialize)]
struct Table1Result {
    scale: String,
    seeds: usize,
    rows: Vec<GroupRow>,
    average_finetag_wmap: f32,
    average_ours_wmap: f32,
    average_a3m_top1: f32,
    average_ours_top1: f32,
}

fn main() {
    let args = ExperimentArgs::from_env();
    println!(
        "Table I — attribute extraction on the noZS split ({} scale, {} seed(s))\n",
        args.scale_label(),
        args.seeds
    );

    let references = attribute_extraction_references();
    let mut per_group_wmap = SeedAggregate::new();
    let mut per_group_top1 = SeedAggregate::new();

    for seed in args.seed_list() {
        // Attribute extraction is evaluated against per-image attribute
        // annotations; unlike the zero-shot experiments we keep the nominal
        // annotation/backbone noise here, otherwise the noisy targets (not
        // the model) cap the measurable WMAP/top-1 (see EXPERIMENTS.md, E1).
        let mut dataset_cfg = args.dataset_config(seed);
        dataset_cfg.noise = dataset::InstanceNoise::default();
        dataset_cfg.feature_noise_scale = 1.0;
        let data = CubLikeDataset::generate(&dataset_cfg);
        let model_cfg = ModelConfig::paper_default()
            .with_embedding_dim(args.embedding_dim())
            .with_seed(seed);
        let train_cfg = TrainConfig::paper_default().with_seed(seed);
        let outcome = Pipeline::new(model_cfg, train_cfg).run(&data, SplitKind::NoZs, seed);
        for group in &outcome.attribute_extraction.per_group {
            per_group_wmap.record(group.group.clone(), group.wmap);
            per_group_top1.record(group.group.clone(), group.top1);
        }
        println!(
            "seed {seed}: mean WMAP {:.1}%, mean group top-1 {:.1}%",
            outcome.attribute_extraction.mean_wmap, outcome.attribute_extraction.mean_top1
        );
    }
    println!();

    let mut rows = Vec::new();
    let mut table_rows = Vec::new();
    for reference in &references {
        let wmap = per_group_wmap.summary(reference.group).unwrap_or_default();
        let top1 = per_group_top1.summary(reference.group).unwrap_or_default();
        table_rows.push(vec![
            reference.group.to_string(),
            format!("{:.0}", reference.finetag_wmap),
            format_summary(&wmap),
            format!("{:.0}", reference.a3m_top1),
            format_summary(&top1),
        ]);
        rows.push(GroupRow {
            group: reference.group.to_string(),
            finetag_wmap: reference.finetag_wmap,
            ours_wmap_mean: wmap.mean(),
            ours_wmap_std: wmap.std(),
            a3m_top1: reference.a3m_top1,
            ours_top1_mean: top1.mean(),
            ours_top1_std: top1.std(),
        });
    }

    let avg = |f: &dyn Fn(&GroupRow) -> f32| rows.iter().map(f).sum::<f32>() / rows.len() as f32;
    let average_finetag = avg(&|r| r.finetag_wmap);
    let average_ours_wmap = avg(&|r| r.ours_wmap_mean);
    let average_a3m = avg(&|r| r.a3m_top1);
    let average_ours_top1 = avg(&|r| r.ours_top1_mean);
    table_rows.push(vec![
        "average".to_string(),
        format!("{average_finetag:.2}"),
        format!("{average_ours_wmap:.2}"),
        format!("{average_a3m:.2}"),
        format!("{average_ours_top1:.2}"),
    ]);

    print_table(
        &[
            "attribute group",
            "Finetag (WMAP, lit.)",
            "Ours (WMAP)",
            "A3M (top-1, lit.)",
            "Ours (top-1)",
        ],
        &table_rows,
    );

    println!(
        "\nshape check: ours beats Finetag on WMAP: {}, ours beats A3M on top-1: {}",
        average_ours_wmap > average_finetag,
        average_ours_top1 > average_a3m
    );

    maybe_write_json(
        &args.json,
        &Table1Result {
            scale: args.scale_label().to_string(),
            seeds: args.seeds,
            rows,
            average_finetag_wmap: average_finetag,
            average_ours_wmap,
            average_a3m_top1: average_a3m,
            average_ours_top1,
        },
    );
}
