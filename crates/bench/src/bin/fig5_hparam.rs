//! **Fig. 5** — hyper-parameter exploration on the validation split.
//!
//! Sweeps each of the five hyper-parameters explored in the paper (batch
//! size, epochs, learning rate, temperature scale, weight decay) one at a
//! time around the default configuration, training and evaluating HDC-ZSC on
//! the validation split (50 classes disjoint from both the training and the
//! ZS test classes).

use bench::{maybe_write_json, print_table, ExperimentArgs};
use dataset::{CubLikeDataset, SplitKind};
use hdc_zsc::{ModelConfig, Pipeline, TrainConfig};
use metrics::SeedAggregate;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    parameter: String,
    value: String,
    top1_mean: f32,
    top1_std: f32,
}

#[derive(Serialize)]
struct Fig5Result {
    scale: String,
    seeds: usize,
    points: Vec<SweepPoint>,
}

/// One hyper-parameter axis: a label and the values to sweep (as in Fig. 5).
struct Axis {
    name: &'static str,
    values: Vec<f32>,
    apply: fn(TrainConfig, ModelConfig, f32) -> (TrainConfig, ModelConfig),
}

fn main() {
    let args = ExperimentArgs::from_env();
    println!(
        "Fig. 5 — hyper-parameter sweeps on the validation split ({} scale, {} seed(s))\n",
        args.scale_label(),
        args.seeds
    );

    let axes = [
        Axis {
            name: "batch size",
            values: vec![4.0, 8.0, 16.0, 32.0],
            apply: |t, m, v| (t.with_batch_size(v as usize), m),
        },
        Axis {
            name: "epochs",
            values: vec![3.0, 10.0, 30.0],
            apply: |t, m, v| (t.with_epochs(v as usize), m),
        },
        Axis {
            name: "learning rate",
            values: vec![1e-6, 1e-3, 1e-2],
            apply: |t, m, v| (t.with_learning_rate(v), m),
        },
        Axis {
            name: "temp scale",
            values: vec![7e-4, 0.03, 0.7],
            apply: |t, mut m, v| {
                m.temperature = v;
                (t, m)
            },
        },
        Axis {
            name: "weight decay",
            values: vec![0.0, 1e-4, 1e-2],
            apply: |t, m, v| (t.with_weight_decay(v), m),
        },
    ];

    let mut agg = SeedAggregate::new();
    for seed in args.seed_list() {
        let data = CubLikeDataset::generate(&args.dataset_config(seed));
        for axis in &axes {
            for &value in &axis.values {
                let (train_cfg, model_cfg) = (axis.apply)(
                    TrainConfig::paper_default().with_seed(seed),
                    ModelConfig::paper_default()
                        .with_embedding_dim(args.embedding_dim())
                        .with_seed(seed),
                    value,
                );
                let outcome =
                    Pipeline::new(model_cfg, train_cfg).run(&data, SplitKind::Validation, seed);
                let key = format!("{}={value:e}", axis.name);
                agg.record(key.clone(), outcome.zsc.top1 * 100.0);
                println!(
                    "seed {seed}: {:<14} = {value:<8.1e} top-1 {:.1}%",
                    axis.name,
                    outcome.zsc.top1 * 100.0
                );
            }
        }
        println!();
    }

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for axis in &axes {
        for &value in &axis.values {
            let key = format!("{}={value:e}", axis.name);
            let summary = agg.summary(&key).unwrap_or_default();
            rows.push(vec![
                axis.name.to_string(),
                format!("{value:.1e}"),
                format!("{:.1} ± {:.1}", summary.mean(), summary.std()),
            ]);
            points.push(SweepPoint {
                parameter: axis.name.to_string(),
                value: format!("{value:e}"),
                top1_mean: summary.mean(),
                top1_std: summary.std(),
            });
        }
    }
    print_table(&["hyper-parameter", "value", "validation top-1 (%)"], &rows);

    // Shape checks mirroring the paper's observations on Fig. 5.
    let find = |param: &str, value: f32| {
        points
            .iter()
            .find(|p| p.parameter == param && p.value == format!("{value:e}"))
            .map(|p| p.top1_mean)
            .unwrap_or(0.0)
    };
    println!("\nshape checks (paper Fig. 5):");
    println!(
        "  ~10 epochs reach within 3% of 30 epochs:     {}",
        find("epochs", 10.0) + 3.0 >= find("epochs", 30.0)
    );
    println!(
        "  lr 1e-3 beats the extremes (1e-6, 1e-2):     {}",
        find("learning rate", 1e-3) >= find("learning rate", 1e-6)
            && find("learning rate", 1e-3) >= find("learning rate", 1e-2)
    );
    println!(
        "  moderate temperature (0.03) beats 0.7:       {}",
        find("temp scale", 0.03) >= find("temp scale", 0.7)
    );

    maybe_write_json(
        &args.json,
        &Fig5Result {
            scale: args.scale_label().to_string(),
            seeds: args.seeds,
            points,
        },
    );
}
