//! **Table II** — ablation of image-encoder and attribute-encoder
//! configurations.
//!
//! Reproduces the four image-encoder rows of Table II (ResNet50 without FC,
//! ResNet50+FC at d = 1536 and d = 2048, ResNet101 without FC), each
//! evaluated with both the stationary HDC attribute encoder and the
//! trainable-MLP encoder, under a *common* hyper-parameter set (as the paper
//! notes, no per-model tuning).
//!
//! At reduced scale the FC dimensions 1536/2048 are scaled proportionally to
//! the simulated feature width (384/512 for 512-d features) so the ablation
//! compares the same ratios; `--full` uses the paper's exact dimensions.

use bench::{format_summary, maybe_write_json, print_table, ExperimentArgs};
use dataset::{BackboneKind, CubLikeDataset, SplitKind};
use hdc_zsc::{AttributeEncoderKind, ModelConfig, Pipeline, TrainConfig};
use metrics::SeedAggregate;
use serde::Serialize;

/// One image-encoder configuration row of Table II.
struct Row {
    label: &'static str,
    backbone: BackboneKind,
    use_projection: bool,
    /// Projection width as a fraction of the paper's 2048-d features.
    projection_ratio: Option<f32>,
    /// Pre-training phases, as listed in the paper's "Pre-train" column.
    pretrain: &'static str,
}

#[derive(Serialize)]
struct AblationResult {
    scale: String,
    seeds: usize,
    rows: Vec<AblationRow>,
}

#[derive(Serialize)]
struct AblationRow {
    image_encoder: String,
    pretrain: String,
    embedding_dim: usize,
    hdc_top1_mean: f32,
    hdc_top1_std: f32,
    mlp_top1_mean: f32,
    mlp_top1_std: f32,
}

fn main() {
    let args = ExperimentArgs::from_env();
    println!(
        "Table II — encoder ablation on the ZS split ({} scale, {} seed(s))\n",
        args.scale_label(),
        args.seeds
    );

    let rows = [
        Row {
            label: "ResNet50 (no FC)",
            backbone: BackboneKind::ResNet50,
            use_projection: false,
            projection_ratio: None,
            pretrain: "I,III",
        },
        Row {
            label: "ResNet50+FC (d=1536)",
            backbone: BackboneKind::ResNet50,
            use_projection: true,
            projection_ratio: Some(1536.0 / 2048.0),
            pretrain: "I,II,III",
        },
        Row {
            label: "ResNet50+FC (d=2048)",
            backbone: BackboneKind::ResNet50,
            use_projection: true,
            projection_ratio: Some(1.0),
            pretrain: "I,II,III",
        },
        Row {
            label: "ResNet101 (no FC)",
            backbone: BackboneKind::ResNet101,
            use_projection: false,
            projection_ratio: None,
            pretrain: "I,III",
        },
    ];

    let mut agg = SeedAggregate::new();
    let mut embedding_dims = vec![0usize; rows.len()];

    for seed in args.seed_list() {
        for (row_idx, row) in rows.iter().enumerate() {
            let base_cfg = args.dataset_config(seed).with_backbone(row.backbone);
            let data = CubLikeDataset::generate(&base_cfg);
            let feature_dim = base_cfg.feature_dim;
            let embedding_dim = row
                .projection_ratio
                .map(|r| ((feature_dim as f32 * r).round() as usize).max(8))
                .unwrap_or(feature_dim);
            embedding_dims[row_idx] = embedding_dim;
            for kind in [
                AttributeEncoderKind::Hdc,
                AttributeEncoderKind::TrainableMlp,
            ] {
                let model_cfg = ModelConfig::paper_default()
                    .with_backbone(row.backbone)
                    .with_projection(row.use_projection)
                    .with_embedding_dim(embedding_dim)
                    .with_attribute_encoder(kind)
                    .with_seed(seed);
                // Common hyper-parameters across every row, as in the paper.
                let train_cfg = TrainConfig::paper_default().with_seed(seed);
                let mut pipeline = Pipeline::new(model_cfg, train_cfg);
                if !row.use_projection {
                    pipeline = pipeline.without_phase2();
                }
                let outcome = pipeline.run(&data, SplitKind::Zs, seed);
                let metric = format!("{}::{kind}", row.label);
                agg.record(metric, outcome.zsc.top1 * 100.0);
                println!(
                    "seed {seed}: {:<22} {:<14} top-1 {:.1}%",
                    row.label,
                    kind.to_string(),
                    outcome.zsc.top1 * 100.0
                );
            }
        }
        println!();
    }

    let mut table_rows = Vec::new();
    let mut json_rows = Vec::new();
    for (row_idx, row) in rows.iter().enumerate() {
        let hdc = agg
            .summary(&format!("{}::HDC", row.label))
            .unwrap_or_default();
        let mlp = agg
            .summary(&format!("{}::Trainable-MLP", row.label))
            .unwrap_or_default();
        table_rows.push(vec![
            row.label.to_string(),
            row.pretrain.to_string(),
            embedding_dims[row_idx].to_string(),
            format_summary(&hdc),
            format_summary(&mlp),
        ]);
        json_rows.push(AblationRow {
            image_encoder: row.label.to_string(),
            pretrain: row.pretrain.to_string(),
            embedding_dim: embedding_dims[row_idx],
            hdc_top1_mean: hdc.mean(),
            hdc_top1_std: hdc.std(),
            mlp_top1_mean: mlp.mean(),
            mlp_top1_std: mlp.std(),
        });
    }
    print_table(
        &[
            "image encoder",
            "pre-train",
            "d",
            "HDC-ZSC top-1 (%)",
            "MLP top-1 (%)",
        ],
        &table_rows,
    );

    let fc_row = &json_rows[1];
    let no_fc_row = &json_rows[0];
    let r101_row = &json_rows[3];
    println!("\nshape checks (paper Table II):");
    println!(
        "  FC projection helps the HDC model:            {} ({:+.1}%)",
        fc_row.hdc_top1_mean > no_fc_row.hdc_top1_mean,
        fc_row.hdc_top1_mean - no_fc_row.hdc_top1_mean
    );
    println!(
        "  ResNet50+FC beats the larger ResNet101:        {} ({:+.1}%)",
        fc_row.hdc_top1_mean > r101_row.hdc_top1_mean,
        fc_row.hdc_top1_mean - r101_row.hdc_top1_mean
    );

    maybe_write_json(
        &args.json,
        &AblationResult {
            scale: args.scale_label().to_string(),
            seeds: args.seeds,
            rows: json_rows,
        },
    );
}
