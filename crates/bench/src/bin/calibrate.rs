//! Difficulty-calibration harness (not a paper artefact).
//!
//! Sweeps the synthetic-dataset difficulty knobs (class-family structure and
//! backbone feature noise) and reports how HDC-ZSC, the Trainable-MLP
//! variant, ESZSL and DAP respond. Used to choose the default "reduced"
//! configuration documented in `EXPERIMENTS.md`, where accuracies sit in the
//! paper's 50–70% regime rather than saturating at 100%.

use baselines::eszsl::{Eszsl, EszslConfig};
use baselines::DirectAttributePrediction;
use bench::{print_table, ExperimentArgs};
use dataset::{CubLikeDataset, DatasetConfig, InstanceNoise, SplitKind};
use hdc_zsc::{AttributeEncoderKind, ModelConfig, Pipeline, TrainConfig};

struct Scenario {
    label: &'static str,
    families: usize,
    distinct: usize,
    noise_scale: f32,
    flip: f64,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let scenarios = [
        Scenario { label: "independent, low noise", families: 0, distinct: 0, noise_scale: 1.0, flip: 0.10 },
        Scenario { label: "independent, high noise", families: 0, distinct: 0, noise_scale: 3.0, flip: 0.30 },
        Scenario { label: "40 families / 4 groups", families: 40, distinct: 4, noise_scale: 1.5, flip: 0.20 },
        Scenario { label: "25 families / 3 groups", families: 25, distinct: 3, noise_scale: 1.5, flip: 0.20 },
        Scenario { label: "25 families / 3 groups, noisy", families: 25, distinct: 3, noise_scale: 2.5, flip: 0.30 },
        Scenario { label: "15 families / 2 groups, noisy", families: 15, distinct: 2, noise_scale: 2.5, flip: 0.30 },
    ];

    let mut rows = Vec::new();
    for scenario in &scenarios {
        let mut cfg = DatasetConfig::tiny(17);
        cfg.num_classes = 100;
        cfg.images_per_class = 12;
        cfg.feature_dim = 256;
        cfg.num_families = scenario.families;
        cfg.family_distinct_groups = scenario.distinct;
        cfg.feature_noise_scale = scenario.noise_scale;
        cfg.noise = InstanceNoise {
            flip_prob: scenario.flip,
            dropout_prob: 0.10,
        };
        let data = CubLikeDataset::generate(&cfg);
        let split = data.split(SplitKind::Zs);
        let chance = 100.0 / split.eval_classes().len() as f32;

        let run = |kind: AttributeEncoderKind, lr: f32| {
            let model_cfg = ModelConfig::paper_default()
                .with_embedding_dim(192)
                .with_attribute_encoder(kind);
            let train_cfg = TrainConfig::paper_default().with_learning_rate(lr);
            Pipeline::new(model_cfg, train_cfg)
                .run(&data, SplitKind::Zs, 0)
                .zsc
                .top1
                * 100.0
        };
        let hdc = run(AttributeEncoderKind::Hdc, 1e-3);
        let mlp = run(AttributeEncoderKind::TrainableMlp, 1e-3);
        let mlp_fast = run(AttributeEncoderKind::TrainableMlp, 3e-3);

        let (train_x, train_labels) = data.features_and_labels(split.train_classes());
        let train_local = CubLikeDataset::to_local_labels(&train_labels, split.train_classes());
        let (_, train_attr) = data.features_and_attributes(split.train_classes());
        let train_sigs = data.class_attribute_matrix(split.train_classes());
        let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
        let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
        let eval_sigs = data.class_attribute_matrix(split.eval_classes());
        let eszsl = Eszsl::fit(&train_x, &train_local, &train_sigs, &EszslConfig::default())
            .accuracy(&eval_x, &eval_local, &eval_sigs)
            * 100.0;
        let dap = DirectAttributePrediction::fit(&train_x, &train_attr, 1.0)
            .accuracy(&eval_x, &eval_local, &eval_sigs)
            * 100.0;

        rows.push(vec![
            scenario.label.to_string(),
            format!("{hdc:.1}"),
            format!("{mlp:.1}"),
            format!("{mlp_fast:.1}"),
            format!("{eszsl:.1}"),
            format!("{dap:.1}"),
            format!("{chance:.1}"),
        ]);
        println!("done: {}", scenario.label);
    }
    println!();
    print_table(
        &["scenario", "HDC", "MLP", "MLP lr×3", "ESZSL", "DAP", "chance"],
        &rows,
    );
    let _ = args;
}
