//! Difficulty-calibration harness (not a paper artefact).
//!
//! Sweeps the synthetic-dataset difficulty knobs (class-family structure and
//! backbone feature noise) and reports how HDC-ZSC, the Trainable-MLP
//! variant, ESZSL and DAP respond. Used to choose the default "reduced"
//! configuration documented in `EXPERIMENTS.md`, where accuracies sit in the
//! paper's 50–70% regime rather than saturating at 100%.

use baselines::eszsl::{Eszsl, EszslConfig};
use baselines::DirectAttributePrediction;
use bench::{maybe_write_json, print_table, ExperimentArgs};
use dataset::{CubLikeDataset, DatasetConfig, InstanceNoise, SplitKind};
use hdc_zsc::{AttributeEncoderKind, ModelConfig, Pipeline, TrainConfig};
use serde::Serialize;

struct Scenario {
    label: &'static str,
    families: usize,
    distinct: usize,
    noise_scale: f32,
    flip: f64,
}

/// One scenario's accuracies (percent, averaged over `--seeds` model seeds
/// for the pipeline methods; ESZSL/DAP are closed-form and seed-free).
#[derive(Serialize)]
struct ScenarioRow {
    scenario: String,
    hdc: f32,
    mlp: f32,
    mlp_lr_x3: f32,
    eszsl: f32,
    dap: f32,
    chance: f32,
}

/// Machine-readable dump of the full calibration sweep.
#[derive(Serialize)]
struct CalibrateResult {
    scale: String,
    seeds: usize,
    rows: Vec<ScenarioRow>,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let scenarios = [
        Scenario {
            label: "independent, low noise",
            families: 0,
            distinct: 0,
            noise_scale: 1.0,
            flip: 0.10,
        },
        Scenario {
            label: "independent, high noise",
            families: 0,
            distinct: 0,
            noise_scale: 3.0,
            flip: 0.30,
        },
        Scenario {
            label: "40 families / 4 groups",
            families: 40,
            distinct: 4,
            noise_scale: 1.5,
            flip: 0.20,
        },
        Scenario {
            label: "25 families / 3 groups",
            families: 25,
            distinct: 3,
            noise_scale: 1.5,
            flip: 0.20,
        },
        Scenario {
            label: "25 families / 3 groups, noisy",
            families: 25,
            distinct: 3,
            noise_scale: 2.5,
            flip: 0.30,
        },
        Scenario {
            label: "15 families / 2 groups, noisy",
            families: 15,
            distinct: 2,
            noise_scale: 2.5,
            flip: 0.30,
        },
    ];

    // Base dataset scale follows the shared flags; the scenario grid then
    // overrides the difficulty knobs being calibrated.
    let (num_classes, images_per_class, feature_dim, embedding_dim) = if args.full {
        (200, 20, 512, 384)
    } else if args.quick {
        (40, 8, 128, 96)
    } else {
        (100, 12, 256, 192)
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for scenario in &scenarios {
        let mut cfg = DatasetConfig::tiny(17);
        cfg.num_classes = num_classes;
        cfg.images_per_class = images_per_class;
        cfg.feature_dim = feature_dim;
        cfg.num_families = scenario.families;
        cfg.family_distinct_groups = scenario.distinct;
        cfg.feature_noise_scale = scenario.noise_scale;
        cfg.noise = InstanceNoise {
            flip_prob: scenario.flip,
            dropout_prob: 0.10,
        };
        let data = CubLikeDataset::generate(&cfg);
        let split = data.split(SplitKind::Zs);
        let chance = 100.0 / split.eval_classes().len() as f32;

        let run = |kind: AttributeEncoderKind, lr: f32| {
            let model_cfg = ModelConfig::paper_default()
                .with_embedding_dim(embedding_dim)
                .with_attribute_encoder(kind);
            let train_cfg = TrainConfig::paper_default().with_learning_rate(lr);
            let pipeline = Pipeline::new(model_cfg, train_cfg);
            let seeds = args.seed_list();
            let mean: f32 = seeds
                .iter()
                .map(|&seed| pipeline.run(&data, SplitKind::Zs, seed).zsc.top1)
                .sum::<f32>()
                / seeds.len() as f32;
            mean * 100.0
        };
        let hdc = run(AttributeEncoderKind::Hdc, 1e-3);
        let mlp = run(AttributeEncoderKind::TrainableMlp, 1e-3);
        let mlp_fast = run(AttributeEncoderKind::TrainableMlp, 3e-3);

        let (train_x, train_labels) = data.features_and_labels(split.train_classes());
        let train_local = CubLikeDataset::to_local_labels(&train_labels, split.train_classes());
        let (_, train_attr) = data.features_and_attributes(split.train_classes());
        let train_sigs = data.class_attribute_matrix(split.train_classes());
        let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
        let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
        let eval_sigs = data.class_attribute_matrix(split.eval_classes());
        let eszsl = Eszsl::fit(&train_x, &train_local, &train_sigs, &EszslConfig::default())
            .accuracy(&eval_x, &eval_local, &eval_sigs)
            * 100.0;
        let dap = DirectAttributePrediction::fit(&train_x, &train_attr, 1.0).accuracy(
            &eval_x,
            &eval_local,
            &eval_sigs,
        ) * 100.0;

        rows.push(vec![
            scenario.label.to_string(),
            format!("{hdc:.1}"),
            format!("{mlp:.1}"),
            format!("{mlp_fast:.1}"),
            format!("{eszsl:.1}"),
            format!("{dap:.1}"),
            format!("{chance:.1}"),
        ]);
        json_rows.push(ScenarioRow {
            scenario: scenario.label.to_string(),
            hdc,
            mlp,
            mlp_lr_x3: mlp_fast,
            eszsl,
            dap,
            chance,
        });
        println!("done: {}", scenario.label);
    }
    println!();
    print_table(
        &[
            "scenario",
            "HDC",
            "MLP",
            "MLP lr×3",
            "ESZSL",
            "DAP",
            "chance",
        ],
        &rows,
    );
    maybe_write_json(
        &args.json,
        &CalibrateResult {
            scale: args.scale_label().to_string(),
            seeds: args.seeds,
            rows: json_rows,
        },
    );
}
