//! **§III-A memory claim** — the factored group/value codebooks need 71%
//! less storage than per-attribute codevectors, about 17 KB at `d = 1536`.
//!
//! Regenerates the accounting directly from the schema and the HDC encoder,
//! and sweeps the hypervector dimensionality to show how the codebook memory
//! compares with the image encoder (hundreds of MB).

use bench::{maybe_write_json, print_table, ExperimentArgs};
use dataset::AttributeSchema;
use hdc::CodebookMemory;
use hdc_zsc::params::{backbone_trunk_params, paper_hdc_zsc_params};
use serde::Serialize;

#[derive(Serialize)]
struct MemoryRow {
    dim: usize,
    factored_bytes: usize,
    naive_bytes: usize,
    reduction_percent: f32,
}

#[derive(Serialize)]
struct MemoryResult {
    rows: Vec<MemoryRow>,
    image_encoder_bytes_fp32: usize,
    codebook_share_percent: f32,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let schema = AttributeSchema::cub200();
    println!(
        "§III-A memory footprint (G = {}, V = {}, α = {})\n",
        schema.num_groups(),
        schema.num_values(),
        schema.num_attributes()
    );

    let mut rows = Vec::new();
    let mut table_rows = Vec::new();
    for dim in [512usize, 1024, 1536, 2048, 4096, 8192] {
        let memory = CodebookMemory::new(
            schema.num_groups(),
            schema.num_values(),
            schema.num_attributes(),
            dim,
        );
        table_rows.push(vec![
            dim.to_string(),
            format!("{:.1} KB", memory.factored_bytes() as f32 / 1024.0),
            format!("{:.1} KB", memory.naive_bytes() as f32 / 1024.0),
            format!("{:.1}%", memory.reduction_fraction() * 100.0),
        ]);
        rows.push(MemoryRow {
            dim,
            factored_bytes: memory.factored_bytes(),
            naive_bytes: memory.naive_bytes(),
            reduction_percent: memory.reduction_fraction() * 100.0,
        });
    }
    print_table(
        &[
            "d",
            "group+value codebooks",
            "per-attribute codevectors",
            "reduction",
        ],
        &table_rows,
    );

    let paper_dim = CodebookMemory::cub200_default();
    let image_encoder_bytes = paper_hdc_zsc_params() * std::mem::size_of::<f32>();
    let share = paper_dim.factored_bytes() as f32 / image_encoder_bytes as f32 * 100.0;
    println!("\nat the paper's d = 1536:");
    println!(
        "  codebook storage: {:.1} KB (paper: ≈17 KB)",
        paper_dim.factored_bytes() as f32 / 1024.0
    );
    println!(
        "  reduction vs per-attribute storage: {:.1}% (paper: 71%)",
        paper_dim.reduction_fraction() * 100.0
    );
    println!(
        "  image encoder (fp32, ResNet50 trunk {:.1} MB + FC): {:.1} MB → codebooks are {share:.4}% of the model",
        backbone_trunk_params(dataset::BackboneKind::ResNet50) as f32 * 4.0 / 1e6,
        image_encoder_bytes as f32 / 1e6
    );

    maybe_write_json(
        &args.json,
        &MemoryResult {
            rows,
            image_encoder_bytes_fp32: image_encoder_bytes,
            codebook_share_percent: share,
        },
    );
}
