//! Extra ablation (not a paper artefact): properties of the HDC attribute
//! dictionary as a function of hypervector dimensionality, and equivalence of
//! the binary (XOR) and bipolar (Hadamard) binding implementations.
//!
//! DESIGN.md §5 calls out two design choices worth quantifying:
//!
//! * how quasi-orthogonal the 312 bound attribute codevectors are at
//!   different dimensionalities (this is what lets the stationary encoder
//!   separate attributes without training), and
//! * that the packed-binary XOR implementation is exactly equivalent to the
//!   bipolar Hadamard implementation used during training (so an edge device
//!   can deploy the 1-bit representation).

use bench::{maybe_write_json, print_table, ExperimentArgs};
use dataset::AttributeSchema;
use hdc::similarity::expected_random_cosine;
use hdc_zsc::HdcAttributeEncoder;
use serde::Serialize;

#[derive(Serialize)]
struct DimRow {
    dim: usize,
    mean_abs_cross_similarity: f32,
    max_abs_cross_similarity: f32,
    expected_random_cosine: f32,
}

#[derive(Serialize)]
struct BindingResult {
    rows: Vec<DimRow>,
    xor_equals_hadamard: bool,
}

fn main() {
    let args = ExperimentArgs::from_env();
    let schema = AttributeSchema::cub200();
    println!("Binding / dimensionality ablation for the attribute dictionary\n");

    let mut rows = Vec::new();
    let mut table_rows = Vec::new();
    let dims: &[usize] = if args.quick {
        &[256, 1024]
    } else {
        &[256, 512, 1024, 1536, 2048, 4096]
    };
    for &dim in dims {
        let encoder = HdcAttributeEncoder::new(&schema, dim, 7);
        let dict = encoder.dictionary();
        // Sample pairwise similarities of the 312 attribute codevectors.
        let mut sum = 0.0f64;
        let mut max: f32 = 0.0;
        let mut count = 0usize;
        for i in 0..dict.rows() {
            for j in (i + 1)..dict.rows() {
                let a = dict.row(i);
                let b = dict.row(j);
                let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let cos = dot / dim as f32;
                sum += cos.abs() as f64;
                max = max.max(cos.abs());
                count += 1;
            }
        }
        let mean = (sum / count as f64) as f32;
        table_rows.push(vec![
            dim.to_string(),
            format!("{mean:.4}"),
            format!("{max:.4}"),
            format!("{:.4}", expected_random_cosine(dim)),
        ]);
        rows.push(DimRow {
            dim,
            mean_abs_cross_similarity: mean,
            max_abs_cross_similarity: max,
            expected_random_cosine: expected_random_cosine(dim),
        });
    }
    print_table(
        &[
            "d",
            "mean |cos| between attributes",
            "max |cos|",
            "E|cos| of random HVs",
        ],
        &table_rows,
    );

    // XOR (packed binary) vs Hadamard (bipolar) equivalence.
    let cfg = hdc::HdcConfig::new(2048);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let groups = hdc::Codebook::random(schema.num_groups(), &cfg, &mut rng);
    let values = hdc::Codebook::random(schema.num_values(), &cfg, &mut rng);
    let mut equal = true;
    for &(g, v) in schema.pairs().iter().step_by(13) {
        let bipolar = groups.get(g).bind(values.get(v));
        let binary = groups.get(g).to_binary().bind(&values.get(v).to_binary());
        if binary.to_bipolar() != bipolar {
            equal = false;
        }
    }
    println!("\nXOR (packed binary) binding equals Hadamard (bipolar) binding: {equal}");
    println!(
        "→ cross-talk between attribute codevectors shrinks as 1/√d; at the paper's d = 1536 the mean |cos| is ≈{:.3}, small enough for 312 attributes to remain separable without training.",
        rows.iter().find(|r| r.dim == 1536).map(|r| r.mean_abs_cross_similarity).unwrap_or(0.0)
    );

    maybe_write_json(
        &args.json,
        &BindingResult {
            rows,
            xor_equals_hadamard: equal,
        },
    );
}
