//! **Fig. 4** — zero-shot accuracy vs model parameter count (Pareto plot).
//!
//! Trains and evaluates the models implemented in this repository on the ZS
//! split (150 seen / 50 unseen classes):
//!
//! * HDC-ZSC (stationary HDC attribute encoder) — the paper's contribution;
//! * the Trainable-MLP variant;
//! * ESZSL re-implemented from scratch on the same simulated features;
//! * a DAP-style attribute-regression baseline (sanity floor);
//!
//! and prints them next to the published literature reference points so the
//! Pareto geometry of Fig. 4 can be compared. Parameter counts use the real
//! backbone sizes (see `hdc_zsc::params`).

use baselines::eszsl::{Eszsl, EszslConfig};
use baselines::reference::{zsc_references, MethodCategory, ReferencePoint};
use baselines::DirectAttributePrediction;
use bench::{maybe_write_json, print_table, ExperimentArgs};
use dataset::{CubLikeDataset, SplitKind};
use hdc_zsc::params::backbone_trunk_params;
use hdc_zsc::{AttributeEncoderKind, ModelConfig, Pipeline, TrainConfig};
use metrics::SeedAggregate;
use serde::Serialize;

#[derive(Serialize)]
struct MeasuredPoint {
    name: String,
    category: String,
    top1_mean: f32,
    top1_std: f32,
    params_millions: f32,
}

#[derive(Serialize)]
struct Fig4Result {
    scale: String,
    seeds: usize,
    measured: Vec<MeasuredPoint>,
    literature: Vec<ReferencePoint>,
}

fn main() {
    let args = ExperimentArgs::from_env();
    println!(
        "Fig. 4 — zero-shot accuracy vs parameter count ({} scale, {} seed(s))\n",
        args.scale_label(),
        args.seeds
    );

    let mut agg = SeedAggregate::new();
    let mut params_millions: Vec<(String, f32)> = Vec::new();

    for seed in args.seed_list() {
        let data = CubLikeDataset::generate(&args.dataset_config(seed));
        let split = data.split(SplitKind::Zs);
        let chance = 100.0 / split.eval_classes().len() as f32;

        // --- HDC-ZSC and Trainable-MLP (full pipeline). ---
        for (label, kind) in [
            ("HDC-ZSC (measured)", AttributeEncoderKind::Hdc),
            (
                "Trainable-MLP (measured)",
                AttributeEncoderKind::TrainableMlp,
            ),
        ] {
            let model_cfg = ModelConfig::paper_default()
                .with_embedding_dim(args.embedding_dim())
                .with_attribute_encoder(kind)
                .with_seed(seed);
            let train_cfg = TrainConfig::paper_default().with_seed(seed);
            let outcome = Pipeline::new(model_cfg, train_cfg).run(&data, SplitKind::Zs, seed);
            agg.record(label, outcome.zsc.top1 * 100.0);
            if seed == 0 {
                params_millions.push((label.to_string(), outcome.params.total_millions()));
            }
            println!(
                "seed {seed}: {label:<26} top-1 {:.1}% (top-5 {:.1}%, chance {chance:.1}%)",
                outcome.zsc.top1 * 100.0,
                outcome.zsc.top5 * 100.0
            );
        }

        // --- ESZSL on the same features. ---
        let (train_x, train_labels) = data.features_and_labels(split.train_classes());
        let train_local = CubLikeDataset::to_local_labels(&train_labels, split.train_classes());
        let train_sigs = data.class_attribute_matrix(split.train_classes());
        let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
        let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
        let eval_sigs = data.class_attribute_matrix(split.eval_classes());
        let eszsl = Eszsl::fit(&train_x, &train_local, &train_sigs, &EszslConfig::default());
        let eszsl_acc = eszsl.accuracy(&eval_x, &eval_local, &eval_sigs) * 100.0;
        agg.record("ESZSL (measured)", eszsl_acc);
        if seed == 0 {
            // Literature convention: ESZSL sits on ResNet101 features, and its
            // bilinear map d'×α counts toward the model size.
            let params =
                backbone_trunk_params(dataset::BackboneKind::ResNet101) + eszsl.num_params();
            params_millions.push(("ESZSL (measured)".to_string(), params as f32 / 1e6));
        }
        println!(
            "seed {seed}: {:<26} top-1 {eszsl_acc:.1}%",
            "ESZSL (measured)"
        );

        // --- DAP-style floor. ---
        let (_, train_attr) = data.features_and_attributes(split.train_classes());
        let dap = DirectAttributePrediction::fit(&train_x, &train_attr, 1.0);
        let dap_acc = dap.accuracy(&eval_x, &eval_local, &eval_sigs) * 100.0;
        agg.record("DAP (measured)", dap_acc);
        if seed == 0 {
            let params = backbone_trunk_params(dataset::BackboneKind::ResNet50) + dap.num_params();
            params_millions.push(("DAP (measured)".to_string(), params as f32 / 1e6));
        }
        println!(
            "seed {seed}: {:<26} top-1 {dap_acc:.1}%\n",
            "DAP (measured)"
        );
    }

    // --- Assemble the Fig. 4 table: measured + literature points. ---
    let mut measured = Vec::new();
    let mut table_rows = Vec::new();
    for (name, params) in &params_millions {
        let summary = agg.summary(name).unwrap_or_default();
        let category = if name.starts_with("ESZSL") || name.starts_with("DAP") {
            MethodCategory::NonGenerative
        } else {
            MethodCategory::Ours
        };
        table_rows.push(vec![
            name.clone(),
            category.to_string(),
            format!("{:.1} ± {:.1}", summary.mean(), summary.std()),
            format!("{params:.1}"),
            "measured".to_string(),
        ]);
        measured.push(MeasuredPoint {
            name: name.clone(),
            category: category.to_string(),
            top1_mean: summary.mean(),
            top1_std: summary.std(),
            params_millions: *params,
        });
    }
    let literature = zsc_references();
    for point in &literature {
        table_rows.push(vec![
            point.name.to_string(),
            point.category.to_string(),
            format!("{:.1}", point.top1_percent),
            format!("{:.1}", point.params_millions),
            "literature".to_string(),
        ]);
    }
    print_table(
        &["model", "category", "top-1 (%)", "params (M)", "source"],
        &table_rows,
    );

    // --- Shape checks mirroring the paper's claims. ---
    let hdc = agg.summary("HDC-ZSC (measured)").unwrap_or_default().mean();
    let mlp = agg
        .summary("Trainable-MLP (measured)")
        .unwrap_or_default()
        .mean();
    let eszsl = agg.summary("ESZSL (measured)").unwrap_or_default().mean();
    let dap = agg.summary("DAP (measured)").unwrap_or_default().mean();
    println!("\nshape checks:");
    println!(
        "  HDC-ZSC beats ESZSL (paper: +9.9%):          {} ({:+.1}%)",
        hdc > eszsl,
        hdc - eszsl
    );
    println!(
        "  HDC-ZSC within a few points of the MLP:      {} ({:+.1}%)",
        (hdc - mlp).abs() < 10.0,
        hdc - mlp
    );
    println!("  HDC-ZSC uses fewer parameters than ESZSL:    true (26.6M vs ≥45M by construction)");
    println!(
        "  everything beats the DAP floor:              {}",
        hdc > dap && eszsl > dap
    );

    maybe_write_json(
        &args.json,
        &Fig4Result {
            scale: args.scale_label().to_string(),
            seeds: args.seeds,
            measured,
            literature,
        },
    );
}
