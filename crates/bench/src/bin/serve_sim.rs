//! Serving-traffic simulator for the batched inference engine.
//!
//! Simulates sustained nearest-class query traffic against an associative
//! class memory and reports throughput and latency percentiles for three
//! paths:
//!
//! * `scalar` — the pre-engine reference: one query at a time, a scalar
//!   `i8` cosine scan over every bipolar prototype;
//! * `batched_1t` — the engine's packed popcount path on a single thread
//!   (this is what the CI `perf-smoke` floor is asserted against, so the
//!   gate does not depend on runner core counts);
//! * `batched` — the same path fanned out over `--threads` threads;
//! * `sharded` (with `--shards N`) — the same workload through an
//!   [`engine::ShardedClassMemory`] of `N` shards, the online/mutable
//!   memory the serving layer hot-swaps. Its best similarities are
//!   cross-checked bit-identical against the scalar scan, pinning the
//!   sharded merge's exactness at benchmark scale.
//! * `snapshot_churn` (with `--snapshot-churn`, requires `--shards`) —
//!   reader threads keep scoring batches against an atomically swapped
//!   `Arc<ShardedClassMemory>` snapshot while a mutator thread publishes
//!   continuous class registrations/updates/removals (copy-on-write, one
//!   repacked shard per mutation) — the serving layer's hot-swap pattern,
//!   measured as query throughput *under churn* plus mutation throughput.
//!
//! Output is a single JSON object on stdout (diagnostics go to stderr), so
//! CI can archive it as an artifact and enforce `--min-speedup`.
//!
//! ```text
//! serve_sim [--dim N] [--classes N] [--batch N] [--batches N]
//!           [--threads N] [--shards N] [--snapshot-churn] [--mutations N]
//!           [--seed N] [--noise P] [--quick] [--json] [--min-speedup X]
//! ```
//!
//! `--quick` selects a small but representative workload (dim 8192,
//! 200 classes) for CI; `--min-speedup X` exits non-zero if the
//! single-thread batched throughput is below `X ×` the scalar throughput.
//! The CI perf-smoke job additionally runs a 2 000-class shape with
//! `--shards 8 --snapshot-churn` to track sharded-memory throughput with
//! and without concurrent registrations in the `serve-sim-perf` artifact.
//!
//! # Routed tier (`--index routed`)
//!
//! `--index routed` switches to the **large-label-space** tier: a seeded
//! clustered workload from [`dataset::workload`] (the same generator the
//! engine's routed-index tests pin their recall numbers on) is scored
//! through both the exhaustive engine path and an
//! [`engine::RoutedClassMemory`] probing `--nprobe` of `--clusters`
//! clusters (defaults: `⌈√classes⌉` clusters, `⌈√clusters⌉` probes). The
//! report adds the sub-linearity numbers: mean candidate fraction,
//! recall@1 / recall@10 against the exhaustive scorer, the
//! routed-vs-exhaustive speedup, and the same agreement measured over an
//! open-set batch of distractor queries that match no class (the GZSL
//! workload's off-distribution half — a shortlist that only holds up
//! on-distribution shows up here first). `--max-candidate-fraction X` exits
//! non-zero if the shortlist is not sub-linear enough — the CI gate at
//! `--classes 100000`. The scalar reference scan is skipped in this tier
//! (it would take minutes at 100k classes and pins nothing new).

use dataset::workload::{SyntheticWorkload, WorkloadConfig};
use engine::{
    BatchScorer, PackedClassMemory, PackedQueryBatch, RoutedClassMemory, RoutedConfig,
    ShardedClassMemory,
};
use hdc::BipolarHypervector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Workload and reporting configuration parsed from the command line.
#[derive(Debug, Clone)]
struct Config {
    dim: usize,
    classes: usize,
    batch: usize,
    batches: usize,
    threads: usize,
    /// `0` skips the sharded path.
    shards: usize,
    /// Measure query throughput while class registrations run concurrently
    /// (requires `--shards`).
    snapshot_churn: bool,
    /// Mutations the churn mutator publishes before the phase ends.
    mutations: usize,
    seed: u64,
    noise: f64,
    json: bool,
    min_speedup: Option<f64>,
    /// `"exhaustive"` (default) or `"routed"` — the large-label-space tier.
    index: String,
    /// Routed tier: coarse cluster count (`0` = `⌈√classes⌉`).
    clusters: usize,
    /// Routed tier: probed clusters per query (`None` = `⌈√clusters⌉`,
    /// `Some(0)` = probe all).
    nprobe: Option<usize>,
    /// Routed tier: exit non-zero when the mean candidate fraction reaches
    /// this value.
    max_candidate_fraction: Option<f64>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            dim: 8192,
            classes: 200,
            batch: 64,
            batches: 48,
            threads: engine::Pool::auto().threads(),
            shards: 0,
            snapshot_churn: false,
            mutations: 200,
            seed: 42,
            noise: 0.2,
            json: false,
            min_speedup: None,
            index: "exhaustive".to_string(),
            clusters: 0,
            nprobe: None,
            max_candidate_fraction: None,
        }
    }
}

fn parse_args() -> Config {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--dim" => config.dim = value("--dim").parse().expect("--dim"),
            "--classes" => config.classes = value("--classes").parse().expect("--classes"),
            "--batch" => config.batch = value("--batch").parse().expect("--batch"),
            "--batches" => config.batches = value("--batches").parse().expect("--batches"),
            "--threads" => config.threads = value("--threads").parse().expect("--threads"),
            "--shards" => config.shards = value("--shards").parse().expect("--shards"),
            "--snapshot-churn" => config.snapshot_churn = true,
            "--mutations" => config.mutations = value("--mutations").parse().expect("--mutations"),
            "--seed" => config.seed = value("--seed").parse().expect("--seed"),
            "--noise" => config.noise = value("--noise").parse().expect("--noise"),
            "--quick" => {
                // Small but representative CI workload: the acceptance shape
                // (dim 8192 / 200 classes) with fewer batches.
                config.dim = 8192;
                config.classes = 200;
                config.batch = 32;
                config.batches = 12;
            }
            "--json" => config.json = true,
            "--min-speedup" => {
                config.min_speedup = Some(value("--min-speedup").parse().expect("--min-speedup"));
            }
            "--index" => config.index = value("--index"),
            "--clusters" => config.clusters = value("--clusters").parse().expect("--clusters"),
            "--nprobe" => config.nprobe = Some(value("--nprobe").parse().expect("--nprobe")),
            "--max-candidate-fraction" => {
                config.max_candidate_fraction = Some(
                    value("--max-candidate-fraction")
                        .parse()
                        .expect("--max-candidate-fraction"),
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve_sim [--dim N] [--classes N] [--batch N] [--batches N] \
                     [--threads N] [--shards N] [--snapshot-churn] [--mutations N] [--seed N] \
                     [--noise P] [--quick] [--json] [--min-speedup X] \
                     [--index exhaustive|routed] [--clusters K] [--nprobe P] \
                     [--max-candidate-fraction X]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(config.dim > 0 && config.classes > 0 && config.batch > 0 && config.batches > 0);
    assert!(
        !config.snapshot_churn || config.shards > 0,
        "--snapshot-churn requires --shards N"
    );
    assert!(
        matches!(config.index.as_str(), "exhaustive" | "routed"),
        "--index must be `exhaustive` or `routed`"
    );
    config
}

/// Latency percentiles (µs) plus throughput for one measured path.
#[derive(Debug, Clone)]
struct PathStats {
    queries: usize,
    elapsed_s: f64,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

impl PathStats {
    /// `latencies_us` holds one latency per *unit of work* (a query for the
    /// scalar path, a batch for the batched paths); `queries` is the total
    /// query count either way.
    fn from_latencies(queries: usize, mut latencies_us: Vec<f64>) -> Self {
        let elapsed_s = latencies_us.iter().sum::<f64>() / 1e6;
        latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        // Ceiling nearest-rank percentiles; the shared helper replaces an
        // earlier `round(p·(n−1))` formula that understated small-sample
        // tails.
        let pct = |p: f64| -> f64 { metrics::nearest_rank(&latencies_us, p) };
        Self {
            queries,
            elapsed_s,
            qps: queries as f64 / elapsed_s.max(1e-12),
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"queries\": {}, \"elapsed_s\": {:.6}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}",
            self.queries, self.elapsed_s, self.qps, self.p50_us, self.p95_us, self.p99_us
        )
    }
}

/// The large-label-space tier: clustered workload, exhaustive vs routed,
/// sub-linearity and recall accounting. Runs instead of the scalar-anchored
/// tiers when `--index routed` is given.
fn run_routed_tier(config: &Config) {
    let clusters = match config.clusters {
        0 => (config.classes as f64).sqrt().ceil() as usize,
        c => c,
    };
    let nprobe = config
        .nprobe
        .unwrap_or_else(|| (clusters as f64).sqrt().ceil() as usize);
    eprintln!(
        "serve_sim[routed]: dim={} classes={} clusters={clusters} nprobe={nprobe} \
         batch={} batches={} threads={}",
        config.dim, config.classes, config.batch, config.batches, config.threads
    );

    // The shared clustered workload: same generator, same seed conventions
    // as the engine's routed-index tests. One batch worth of distractors
    // rides along for the open-set half of the report; they are drawn after
    // the in-distribution stream, so the pinned recall numbers are
    // untouched.
    let workload = SyntheticWorkload::generate(&WorkloadConfig {
        dim: config.dim,
        classes: config.classes,
        clusters: 0, // latent families: auto ⌈√classes⌉
        class_noise: 0.05,
        query_noise: config.noise,
        queries: config.batches * config.batch,
        distractors: config.batch,
        seed: config.seed,
    });
    let memory = workload.packed_memory();
    let build_start = Instant::now();
    let mut routed = RoutedClassMemory::from_packed(
        &memory,
        RoutedConfig {
            clusters,
            nprobe,
            ..RoutedConfig::default()
        },
    )
    .with_threads(config.threads);
    routed.set_nprobe(nprobe);
    let build_s = build_start.elapsed().as_secs_f64();
    eprintln!(
        "serve_sim[routed]: clustered {} classes into {} clusters in {build_s:.2}s",
        memory.len(),
        routed.num_clusters()
    );

    let packed_batches: Vec<PackedQueryBatch> = workload
        .queries
        .chunks(config.batch)
        .map(|chunk| {
            let mut batch = PackedQueryBatch::with_capacity(config.dim, chunk.len());
            for q in chunk {
                batch.push_signs(q);
            }
            batch
        })
        .collect();
    let total_queries = workload.queries.len();

    // Exhaustive baseline: the engine's batched popcount sweep, full matrix.
    let scorer = BatchScorer::new(&memory).with_threads(config.threads);
    let mut exhaustive_top: Vec<Vec<(usize, f32)>> = Vec::with_capacity(total_queries);
    let mut exhaustive_latencies = Vec::with_capacity(packed_batches.len());
    for batch in &packed_batches {
        let start = Instant::now();
        let top = scorer.topk_batch(batch, 10);
        exhaustive_latencies.push(start.elapsed().as_secs_f64() * 1e6);
        exhaustive_top.extend(top);
    }
    let exhaustive = PathStats::from_latencies(total_queries, exhaustive_latencies);

    // Routed path: probe, shortlist, exact re-rank.
    let mut routed_top: Vec<Vec<(String, f32)>> = Vec::with_capacity(total_queries);
    let mut routed_latencies = Vec::with_capacity(packed_batches.len());
    for batch in &packed_batches {
        let start = Instant::now();
        let top = routed.topk_batch(batch, 10);
        routed_latencies.push(start.elapsed().as_secs_f64() * 1e6);
        routed_top.extend(
            top.into_iter()
                .map(|t| t.into_iter().map(|(l, s)| (l.to_string(), s)).collect()),
        );
    }
    let routed_stats = PathStats::from_latencies(total_queries, routed_latencies);

    // Sub-linearity + recall accounting (outside the timed loops).
    let mut candidate_total = 0usize;
    for query in workload.queries.iter() {
        candidate_total += routed.candidate_classes(&engine::pack_signs(query));
    }
    let candidate_fraction =
        candidate_total as f64 / (total_queries * config.classes).max(1) as f64;
    let mut hits_at_1 = 0usize;
    let mut overlap_at_10 = 0usize;
    let mut overlap_denominator = 0usize;
    for (ex, ro) in exhaustive_top.iter().zip(&routed_top) {
        let ex_labels: Vec<&str> = ex.iter().map(|&(c, _)| memory.label(c)).collect();
        if let (Some(first_ex), Some((first_ro, _))) = (ex_labels.first(), ro.first()) {
            if first_ex == first_ro {
                hits_at_1 += 1;
            }
        }
        overlap_denominator += ex_labels.len();
        overlap_at_10 += ro
            .iter()
            .filter(|(l, _)| ex_labels.contains(&l.as_str()))
            .count();
    }
    let recall_at_1 = hits_at_1 as f64 / total_queries.max(1) as f64;
    let recall_at_10 = overlap_at_10 as f64 / overlap_denominator.max(1) as f64;
    let routed_speedup = routed_stats.qps / exhaustive.qps.max(1e-12);

    // Open-set half: distractor queries match no class, so their nearest
    // neighbour is an arbitrary low-similarity winner — exactly where a
    // shortlist that only works on-distribution would silently diverge from
    // the exhaustive scorer. Recall here is routed-vs-exhaustive agreement
    // on that GZSL distractor workload; the CI gate stays on the
    // in-distribution numbers above.
    let mut distractor_hits_at_1 = 0usize;
    let mut distractor_overlap_at_10 = 0usize;
    let mut distractor_overlap_denominator = 0usize;
    for signs in &workload.distractor_queries {
        let query = engine::pack_signs(signs);
        let ex_labels: Vec<&str> = memory
            .top_k(&query, 10)
            .into_iter()
            .map(|(c, _)| memory.label(c))
            .collect();
        let ro = routed.top_k(&query, 10);
        if let (Some(first_ex), Some((first_ro, _))) = (ex_labels.first(), ro.first()) {
            if first_ex == first_ro {
                distractor_hits_at_1 += 1;
            }
        }
        distractor_overlap_denominator += ex_labels.len();
        distractor_overlap_at_10 += ro.iter().filter(|(l, _)| ex_labels.contains(l)).count();
    }
    let distractors = workload.distractor_queries.len();
    let distractor_recall_at_1 = distractor_hits_at_1 as f64 / distractors.max(1) as f64;
    let distractor_recall_at_10 =
        distractor_overlap_at_10 as f64 / distractor_overlap_denominator.max(1) as f64;

    let json = format!(
        "{{\n  \"config\": {{\"dim\": {}, \"classes\": {}, \"batch\": {}, \"batches\": {}, \
         \"threads\": {}, \"seed\": {}, \"noise\": {}, \"index\": \"routed\", \
         \"clusters\": {clusters}, \"nprobe\": {nprobe}}},\n  \
         \"build_s\": {build_s:.3},\n  \"exhaustive\": {},\n  \"routed\": {},\n  \
         \"routed_speedup\": {routed_speedup:.2},\n  \
         \"candidate_fraction\": {candidate_fraction:.4},\n  \
         \"recall_at_1\": {recall_at_1:.4},\n  \"recall_at_10\": {recall_at_10:.4},\n  \
         \"distractors\": {distractors},\n  \
         \"distractor_recall_at_1\": {distractor_recall_at_1:.4},\n  \
         \"distractor_recall_at_10\": {distractor_recall_at_10:.4}\n}}",
        config.dim,
        config.classes,
        config.batch,
        config.batches,
        config.threads,
        config.seed,
        config.noise,
        exhaustive.to_json(),
        routed_stats.to_json(),
    );
    if config.json {
        println!("{json}");
    } else {
        eprintln!("{json}");
    }
    eprintln!(
        "exhaustive {:.0} q/s | routed({clusters}c/{nprobe}p) {:.0} q/s ({routed_speedup:.1}x) | \
         candidates {:.1}% | recall@1 {recall_at_1:.3} | recall@10 {recall_at_10:.3} | \
         distractor recall@1 {distractor_recall_at_1:.3} ({distractors} distractors)",
        exhaustive.qps,
        routed_stats.qps,
        candidate_fraction * 100.0
    );

    if let Some(ceiling) = config.max_candidate_fraction {
        if candidate_fraction >= ceiling {
            eprintln!(
                "SUB-LINEARITY REGRESSION: candidate fraction {candidate_fraction:.4} \
                 is not below the ceiling {ceiling:.4}"
            );
            std::process::exit(1);
        }
        eprintln!("sub-linearity ok: {candidate_fraction:.4} < {ceiling:.4}");
    }
}

fn main() {
    let config = parse_args();
    if config.index == "routed" {
        run_routed_tier(&config);
        return;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);

    eprintln!(
        "serve_sim: dim={} classes={} batch={} batches={} threads={} shards={}",
        config.dim, config.classes, config.batch, config.batches, config.threads, config.shards
    );

    // Class memory: random bipolar prototypes, both as the scalar reference
    // set and packed into the engine's contiguous word matrix.
    let prototypes: Vec<BipolarHypervector> = (0..config.classes)
        .map(|_| BipolarHypervector::random(config.dim, &mut rng))
        .collect();
    let mut memory = PackedClassMemory::new(config.dim);
    for (c, proto) in prototypes.iter().enumerate() {
        memory.insert_packed(format!("class{c:04}"), proto.to_binary().words());
    }

    // Query stream: noisy prototype copies, the realistic cleanup workload.
    let queries: Vec<BipolarHypervector> = (0..config.batches * config.batch)
        .map(|q| prototypes[q % prototypes.len()].flip_noise(config.noise, &mut rng))
        .collect();
    let packed_batches: Vec<PackedQueryBatch> = queries
        .chunks(config.batch)
        .map(|chunk| {
            let mut batch = PackedQueryBatch::with_capacity(config.dim, chunk.len());
            for q in chunk {
                batch.push_packed(q.to_binary().words());
            }
            batch
        })
        .collect();

    // --- scalar reference: one query at a time, i8 cosine scan ------------
    let mut scalar_best = Vec::with_capacity(queries.len());
    let mut scalar_latencies = Vec::with_capacity(queries.len());
    for query in &queries {
        let start = Instant::now();
        let mut best = f32::NEG_INFINITY;
        for proto in &prototypes {
            let sim = query.cosine(proto);
            if sim > best {
                best = sim;
            }
        }
        scalar_latencies.push(start.elapsed().as_secs_f64() * 1e6);
        scalar_best.push(best);
    }
    let scalar = PathStats::from_latencies(queries.len(), scalar_latencies);

    // --- batched engine paths ---------------------------------------------
    let run_batched = |threads: usize| -> (Vec<f32>, PathStats) {
        let scorer = BatchScorer::new(&memory).with_threads(threads);
        let mut best = Vec::with_capacity(queries.len());
        let mut latencies = Vec::with_capacity(packed_batches.len());
        for batch in &packed_batches {
            let start = Instant::now();
            let nearest = scorer.nearest_batch(batch);
            latencies.push(start.elapsed().as_secs_f64() * 1e6);
            best.extend(nearest.into_iter().map(|(_, sim)| sim));
        }
        (best, PathStats::from_latencies(queries.len(), latencies))
    };
    let (batched_1t_best, batched_1t) = run_batched(1);
    let (_, batched) = run_batched(config.threads.max(1));

    // Cross-check: the engine's best similarity must be bit-identical to the
    // scalar scan's (tie-safe: compares scores, not winner labels).
    for (q, (a, b)) in scalar_best.iter().zip(&batched_1t_best).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "query {q}: scalar best {a} != batched best {b}"
        );
    }
    eprintln!("serve_sim: scalar and batched best-similarities are bit-identical");

    // --- sharded online-memory path (opt-in via --shards) -------------------
    let sharded_section = (config.shards > 0).then(|| {
        let sharded =
            ShardedClassMemory::from_packed(&memory, config.shards).with_threads(config.threads);
        let mut best = Vec::with_capacity(queries.len());
        let mut latencies = Vec::with_capacity(packed_batches.len());
        for batch in &packed_batches {
            let start = Instant::now();
            let nearest = sharded.nearest_batch(batch);
            latencies.push(start.elapsed().as_secs_f64() * 1e6);
            best.extend(nearest.into_iter().map(|(_, sim)| sim));
        }
        for (q, (a, b)) in scalar_best.iter().zip(&best).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "query {q}: scalar best {a} != sharded best {b}"
            );
        }
        eprintln!(
            "serve_sim: sharded({}) best-similarities are bit-identical to scalar",
            config.shards
        );
        PathStats::from_latencies(queries.len(), latencies)
    });

    // --- snapshot-churn path: queries under concurrent registrations -------
    let churn_section = (config.snapshot_churn && config.shards > 0).then(|| {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::{Arc, Mutex};

        let base =
            ShardedClassMemory::from_packed(&memory, config.shards).with_threads(config.threads);
        // The serving pattern: an atomically swapped snapshot slot. Readers
        // clone the Arc per batch (exactly what the QueryServer dispatcher
        // does per coalesced batch); the mutator publishes copy-on-write
        // snapshots that repack one shard each.
        let slot = Mutex::new(Arc::new(base.clone()));
        let stop = AtomicBool::new(false);
        let queries_answered = AtomicUsize::new(0);
        let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        let readers = config.threads.saturating_sub(1).clamp(1, 4);
        let mut mutation_protos = Vec::with_capacity(config.mutations);
        for _ in 0..config.mutations {
            mutation_protos.push(BipolarHypervector::random(config.dim, &mut rng));
        }

        let churn_start = Instant::now();
        let mutation_s = std::thread::scope(|scope| {
            for _ in 0..readers {
                let (slot, stop, queries_answered, latencies) =
                    (&slot, &stop, &queries_answered, &latencies);
                let packed_batches = &packed_batches;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    'outer: loop {
                        for batch in packed_batches {
                            if stop.load(Ordering::Relaxed) {
                                break 'outer;
                            }
                            let snapshot = Arc::clone(&slot.lock().expect("slot"));
                            let start = Instant::now();
                            let nearest = snapshot.nearest_batch(batch);
                            local.push(start.elapsed().as_secs_f64() * 1e6);
                            queries_answered.fetch_add(nearest.len(), Ordering::Relaxed);
                        }
                    }
                    latencies.lock().expect("latencies").extend(local);
                });
            }
            // Mutator: one registration/update/removal per iteration, each
            // publishing a fresh snapshot.
            let mutation_start = Instant::now();
            for (m, proto) in mutation_protos.iter().enumerate() {
                let mut next = (**slot.lock().expect("slot")).clone();
                match m % 4 {
                    0 | 1 => {
                        next.add_class_packed(format!("churn{m:05}"), proto.to_binary().words());
                    }
                    2 => {
                        let label = format!("class{:04}", m % config.classes);
                        next.add_class_packed(label, proto.to_binary().words());
                    }
                    _ => {
                        let target = format!("churn{:05}", m.saturating_sub(3));
                        if !next.remove_class(&target) {
                            next.add_class_packed(
                                format!("churn{m:05}-b"),
                                proto.to_binary().words(),
                            );
                        }
                    }
                }
                *slot.lock().expect("slot") = Arc::new(next);
            }
            let mutation_s = mutation_start.elapsed().as_secs_f64();
            stop.store(true, Ordering::Relaxed);
            mutation_s
        });
        let elapsed_s = churn_start.elapsed().as_secs_f64();
        let answered = queries_answered.load(Ordering::Relaxed);
        let mut lats = latencies.into_inner().expect("latencies");
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let final_len = slot.lock().expect("slot").len();
        eprintln!(
            "serve_sim: snapshot churn served {answered} queries across {readers} readers \
             while publishing {} mutations in {elapsed_s:.3}s ({} classes live at the end)",
            config.mutations, final_len
        );
        // Mutation throughput is measured over the mutator's own window
        // (`mutation_s`), not the whole phase: `elapsed_s` also includes the
        // readers finishing their in-flight batches after `stop` is set,
        // which would understate it.
        format!(
            "{{\"readers\": {readers}, \"queries\": {answered}, \"elapsed_s\": {elapsed_s:.6}, \
             \"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mutations\": {}, \
             \"mutation_window_s\": {mutation_s:.6}, \"mutations_per_s\": {:.1}, \
             \"final_classes\": {final_len}}}",
            answered as f64 / elapsed_s.max(1e-12),
            metrics::nearest_rank(&lats, 0.50),
            metrics::nearest_rank(&lats, 0.99),
            config.mutations,
            config.mutations as f64 / mutation_s.max(1e-12),
        )
    });

    let speedup_1t = batched_1t.qps / scalar.qps.max(1e-12);
    let speedup = batched.qps / scalar.qps.max(1e-12);
    let sharded_json = sharded_section.as_ref().map_or(String::new(), |stats| {
        format!(
            ",\n  \"sharded\": {},\n  \"sharded_speedup\": {:.2}",
            stats.to_json(),
            stats.qps / scalar.qps.max(1e-12)
        )
    });
    let churn_json = churn_section.as_ref().map_or(String::new(), |json| {
        format!(",\n  \"snapshot_churn\": {json}")
    });

    let json = format!(
        "{{\n  \"config\": {{\"dim\": {}, \"classes\": {}, \"batch\": {}, \"batches\": {}, \
         \"threads\": {}, \"shards\": {}, \"seed\": {}, \"noise\": {}}},\n  \"scalar\": {},\n  \
         \"batched_1t\": {},\n  \"batched\": {}{}{},\n  \"speedup_1t\": {:.2},\n  \
         \"speedup\": {:.2}\n}}",
        config.dim,
        config.classes,
        config.batch,
        config.batches,
        config.threads,
        config.shards,
        config.seed,
        config.noise,
        scalar.to_json(),
        batched_1t.to_json(),
        batched.to_json(),
        sharded_json,
        churn_json,
        speedup_1t,
        speedup
    );
    if config.json {
        println!("{json}");
    } else {
        eprintln!("{json}");
        eprintln!(
            "scalar {:.0} q/s | batched(1t) {:.0} q/s ({:.1}x) | batched({}t) {:.0} q/s ({:.1}x){}",
            scalar.qps,
            batched_1t.qps,
            speedup_1t,
            config.threads,
            batched.qps,
            speedup,
            sharded_section.as_ref().map_or(String::new(), |s| format!(
                " | sharded({}) {:.0} q/s",
                config.shards, s.qps
            ))
        );
    }

    if let Some(floor) = config.min_speedup {
        if speedup_1t < floor {
            eprintln!(
                "PERF REGRESSION: single-thread batched speedup {speedup_1t:.2}x \
                 is below the floor {floor:.2}x"
            );
            std::process::exit(1);
        }
        eprintln!("perf floor ok: {speedup_1t:.2}x >= {floor:.2}x");
    }
}
