//! Criterion micro-benchmarks of the HDC substrate: binding, bundling and
//! similarity across hypervector dimensionalities (the operations the paper
//! proposes to offload to non-von-Neumann accelerators).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc::{bundler::bundle_bipolar, BinaryHypervector, BipolarHypervector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const DIMS: &[usize] = &[1024, 1536, 2048, 4096, 8192];

fn bench_binding(c: &mut Criterion) {
    let mut group = c.benchmark_group("binding");
    group.sample_size(30);
    for &dim in DIMS {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BipolarHypervector::random(dim, &mut rng);
        let b = BipolarHypervector::random(dim, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("bipolar_hadamard", dim),
            &dim,
            |bench, _| bench.iter(|| black_box(a.bind(&b))),
        );
        let ab = a.to_binary();
        let bb = b.to_binary();
        group.bench_with_input(BenchmarkId::new("binary_xor", dim), &dim, |bench, _| {
            bench.iter(|| black_box(ab.bind(&bb)))
        });
    }
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    group.sample_size(30);
    for &dim in DIMS {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BipolarHypervector::random(dim, &mut rng);
        let b = BipolarHypervector::random(dim, &mut rng);
        group.bench_with_input(BenchmarkId::new("bipolar_cosine", dim), &dim, |bench, _| {
            bench.iter(|| black_box(a.cosine(&b)))
        });
        let ab = a.to_binary();
        let bb = b.to_binary();
        group.bench_with_input(BenchmarkId::new("binary_hamming", dim), &dim, |bench, _| {
            bench.iter(|| black_box(ab.hamming(&bb)))
        });
    }
    group.finish();
}

fn bench_bundling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundling");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(3);
    for &n in &[8usize, 32, 128] {
        let items: Vec<BipolarHypervector> = (0..n)
            .map(|_| BipolarHypervector::random(2048, &mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("majority_2048", n), &n, |bench, _| {
            bench.iter(|| black_box(bundle_bipolar(&items).expect("non-empty")))
        });
    }
    group.finish();
}

fn bench_binary_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(4);
    let hv = BinaryHypervector::random(2048, &mut rng);
    group.bench_function("flip_noise_10pct_2048", |bench| {
        bench.iter(|| black_box(hv.flip_noise(0.1, &mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_binding,
    bench_similarity,
    bench_bundling,
    bench_binary_noise
);
criterion_main!(benches);
