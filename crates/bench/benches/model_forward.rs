//! Criterion benchmarks of the model's forward paths: attribute-dictionary
//! construction, class encoding `A × B`, and inference-time class-logit
//! computation (the operations that run on-device at deployment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataset::AttributeSchema;
use hdc_zsc::{HdcAttributeEncoder, ModelConfig, ZscModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tensor::Matrix;

fn bench_dictionary_construction(c: &mut Criterion) {
    let schema = AttributeSchema::cub200();
    let mut group = c.benchmark_group("attribute_dictionary");
    group.sample_size(10);
    for &dim in &[512usize, 1536] {
        group.bench_with_input(BenchmarkId::new("materialise", dim), &dim, |b, &dim| {
            b.iter(|| black_box(HdcAttributeEncoder::new(&schema, dim, 1)))
        });
    }
    group.finish();
}

fn bench_class_encoding(c: &mut Criterion) {
    let schema = AttributeSchema::cub200();
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("class_encoding");
    group.sample_size(10);
    for &(classes, dim) in &[(50usize, 512usize), (200, 1536)] {
        let encoder = HdcAttributeEncoder::new(&schema, dim, 1);
        let attributes = Matrix::random_uniform(classes, 312, 0.5, &mut rng).map(f32::abs);
        group.bench_with_input(
            BenchmarkId::new("phi_equals_a_times_b", format!("{classes}x{dim}")),
            &dim,
            |b, _| b.iter(|| black_box(encoder.encode_classes(&attributes))),
        );
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let schema = AttributeSchema::cub200();
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("zsc_inference");
    group.sample_size(10);
    for &(batch, feature_dim, dim) in &[(16usize, 512usize, 384usize), (16, 2048, 1536)] {
        let config = ModelConfig::paper_default().with_embedding_dim(dim);
        let model = ZscModel::new(&config, &schema, feature_dim);
        let features = Matrix::random_uniform(batch, feature_dim, 1.0, &mut rng);
        let class_attributes = Matrix::random_uniform(50, 312, 0.5, &mut rng).map(f32::abs);
        group.bench_with_input(
            BenchmarkId::new("class_logits", format!("b{batch}_f{feature_dim}_d{dim}")),
            &dim,
            |b, _| b.iter(|| black_box(model.class_logits(&features, &class_attributes))),
        );
        group.bench_with_input(
            BenchmarkId::new(
                "attribute_logits",
                format!("b{batch}_f{feature_dim}_d{dim}"),
            ),
            &dim,
            |b, _| b.iter(|| black_box(model.attribute_logits(&features))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dictionary_construction,
    bench_class_encoding,
    bench_inference
);
criterion_main!(benches);
