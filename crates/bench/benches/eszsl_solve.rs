//! Criterion benchmark of the ESZSL closed-form solve (the baseline's
//! training cost) against the HDC-ZSC per-epoch gradient step, documenting
//! the computational trade-off discussed in §IV-B.

use baselines::eszsl::{Eszsl, EszslConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tensor::Matrix;

fn synthetic(
    n: usize,
    d: usize,
    classes: usize,
    alpha: usize,
    seed: u64,
) -> (Matrix, Vec<usize>, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let features = Matrix::random_uniform(n, d, 1.0, &mut rng);
    let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    let signatures = Matrix::random_uniform(classes, alpha, 1.0, &mut rng).map(f32::abs);
    (features, labels, signatures)
}

fn bench_eszsl_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("eszsl_fit");
    group.sample_size(10);
    for &(n, d) in &[(500usize, 128usize), (1000, 256)] {
        let (features, labels, signatures) = synthetic(n, d, 40, 312, 1);
        group.bench_with_input(
            BenchmarkId::new("closed_form", format!("n{n}_d{d}")),
            &d,
            |b, _| {
                b.iter(|| {
                    black_box(Eszsl::fit(
                        &features,
                        &labels,
                        &signatures,
                        &EszslConfig::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_eszsl_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("eszsl_predict");
    group.sample_size(20);
    let (features, labels, signatures) = synthetic(500, 256, 40, 312, 2);
    let model = Eszsl::fit(&features, &labels, &signatures, &EszslConfig::default());
    let (test_features, _, test_signatures) = synthetic(100, 256, 20, 312, 3);
    group.bench_function("batch_100", |b| {
        b.iter(|| black_box(model.predict(&test_features, &test_signatures)))
    });
    group.finish();
}

criterion_group!(benches, bench_eszsl_fit, bench_eszsl_predict);
criterion_main!(benches);
