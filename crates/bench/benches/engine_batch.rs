//! Criterion micro-benchmarks of the batched inference engine: scalar
//! one-query-at-a-time cosine scans versus the packed popcount batch path,
//! across hypervector dimensionalities — the speedup trajectory the CI
//! perf-smoke job guards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{BatchScorer, PackedClassMemory, PackedQueryBatch};
use hdc::BipolarHypervector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const DIMS: &[usize] = &[2048, 8192, 32768];
const CLASSES: usize = 100;
const BATCH: usize = 32;

struct Problem {
    prototypes: Vec<BipolarHypervector>,
    queries: Vec<BipolarHypervector>,
    memory: PackedClassMemory,
    batch: PackedQueryBatch,
}

fn problem(dim: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(dim as u64);
    let prototypes: Vec<BipolarHypervector> = (0..CLASSES)
        .map(|_| BipolarHypervector::random(dim, &mut rng))
        .collect();
    let queries: Vec<BipolarHypervector> = (0..BATCH)
        .map(|q| prototypes[q % CLASSES].flip_noise(0.2, &mut rng))
        .collect();
    let mut memory = PackedClassMemory::new(dim);
    for (c, proto) in prototypes.iter().enumerate() {
        memory.insert_packed(format!("class{c:03}"), proto.to_binary().words());
    }
    let mut batch = PackedQueryBatch::with_capacity(dim, BATCH);
    for q in &queries {
        batch.push_packed(q.to_binary().words());
    }
    Problem {
        prototypes,
        queries,
        memory,
        batch,
    }
}

/// The pre-engine path: for each query, an `i8` cosine scan over every
/// prototype, keeping the best similarity.
fn scalar_nearest_batch(p: &Problem) -> f32 {
    let mut acc = 0.0f32;
    for query in &p.queries {
        let mut best = f32::NEG_INFINITY;
        for proto in &p.prototypes {
            let sim = query.cosine(proto);
            if sim > best {
                best = sim;
            }
        }
        acc += best;
    }
    acc
}

fn bench_engine_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    for &dim in DIMS {
        let p = problem(dim);
        group.bench_with_input(BenchmarkId::new("scalar_nearest", dim), &dim, |bench, _| {
            bench.iter(|| black_box(scalar_nearest_batch(&p)))
        });
        let scorer_1t = BatchScorer::new(&p.memory).with_threads(1);
        group.bench_with_input(
            BenchmarkId::new("packed_nearest_1t", dim),
            &dim,
            |bench, _| bench.iter(|| black_box(scorer_1t.nearest_batch(&p.batch))),
        );
        let scorer = BatchScorer::new(&p.memory);
        group.bench_with_input(
            BenchmarkId::new("packed_nearest_auto", dim),
            &dim,
            |bench, _| bench.iter(|| black_box(scorer.nearest_batch(&p.batch))),
        );
        group.bench_with_input(
            BenchmarkId::new("packed_score_batch", dim),
            &dim,
            |bench, _| bench.iter(|| black_box(scorer.score_batch(&p.batch))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_batch);
criterion_main!(benches);
