//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream `rand`'s `StdRng` is a ChaCha block cipher; this stand-in uses
/// xoshiro256++ (Blackman & Vigna, 2019), which is far smaller, passes
/// BigCrush, and is more than random enough for synthetic-data generation and
/// property tests. Streams are deterministic per seed but do **not** match
/// upstream `StdRng` streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
