//! Distributions and uniform range sampling.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Types that can produce values of type `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution of a type: uniform over all values for
/// integers and `bool`, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 high-quality mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform distribution over a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Uniform distribution over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with an empty range");
        Self { low, high }
    }
}

impl<T> Distribution<T> for Uniform<T>
where
    T: Copy + PartialOrd,
    Range<T>: SampleRange<T>,
{
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (self.low..self.high).sample_single(rng)
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the bias for
                // spans ≪ 2^64 is negligible for this workspace's use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$ty>::MIN && end == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $ty
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $uty as $ty;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as i128 + hi as i128) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $ty = Standard.sample(rng);
                let value = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if value >= self.end { self.start } else { value }
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit: $ty = Standard.sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
