//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! `rand 0.8` API surface the code actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] (a xoshiro256++
//!   generator seeded through SplitMix64 — deterministic across platforms);
//! * the [`Rng`] extension trait with `gen`, `gen_bool`, `gen_range` and
//!   `sample`;
//! * [`distributions::Distribution`], [`distributions::Standard`] and
//!   [`distributions::Uniform`].
//!
//! The implementation is *not* the upstream crate: stream values differ from
//! upstream `StdRng`, but all determinism guarantees the workspace relies on
//! (same seed ⇒ same stream, different seed ⇒ different stream) hold.

#![deny(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, SampleRange, Standard};

/// Core trait for random number generators: a source of uniformly
/// distributed `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32;

    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods for [`RngCore`] implementors.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        let sample: f64 = Standard.sample(self);
        sample < p
    }

    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for `StdRng`).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public domain, Vigna 2015).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
