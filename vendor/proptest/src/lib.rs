//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! range and tuple strategies, [`arbitrary::any`], and the `prop_assert*`
//! macros. Each property runs for a fixed number of cases (default 64,
//! override with the `PROPTEST_CASES` environment variable) driven by a
//! deterministic per-test RNG, so failures are reproducible. Shrinking is
//! not implemented — a failing case panics with the assertion message.

#![deny(missing_docs)]

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a `#[test]`
/// function that evaluates the strategies and runs the body for
/// [`test_runner::cases`] iterations.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..$crate::test_runner::cases() {
                    let run = || {
                        $(let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);)+
                        $body
                    };
                    if let Err(message) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest stub: property `{}` failed at case {}/{}",
                            stringify!($name),
                            case + 1,
                            $crate::test_runner::cases()
                        );
                        ::std::panic::resume_unwind(message);
                    }
                }
            }
        )*
    };
}

/// Asserts a boolean condition inside a property, with optional context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}
