//! `any::<T>()` — strategies for a type's "natural" full-range distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e12f64..1.0e12)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
