//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of some type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
