//! The deterministic RNG and case-count policy driving property tests.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of cases each property runs for. Defaults to 64; override with the
/// `PROPTEST_CASES` environment variable.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test generator: seeded from the test's name so every
/// property gets an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for the named test (FNV-1a hash of the name as seed).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
