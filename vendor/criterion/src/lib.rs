//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the criterion API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple wall-clock timer instead of criterion's statistical
//! machinery. Each benchmark warms up once, then reports the mean of
//! `sample_size` timed iterations. Good enough to compare orders of
//! magnitude and to keep `cargo bench` runnable; not a statistics suite.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// The top-level benchmark harness handle.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: self.default_sample_size,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.default_sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the stub; mirrors criterion's API).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group by function name and parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; times the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_nanos: u128,
    iterations: u64,
}

impl Bencher {
    /// Times one call of `routine` and accumulates the measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_nanos += start.elapsed().as_nanos();
        self.iterations += 1;
    }
}

/// Warm up once, then run `sample_size` timed samples and print the mean.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut warmup = Bencher::default();
    f(&mut warmup);
    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.iterations == 0 {
        eprintln!("  {label}: no iterations recorded");
        return;
    }
    let mean_nanos = bencher.elapsed_nanos as f64 / bencher.iterations as f64;
    eprintln!(
        "  {label}: {} (mean of {} iters)",
        human_time(mean_nanos),
        bencher.iterations
    );
}

/// Formats nanoseconds with an appropriate unit.
fn human_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Declares a function that runs the listed benchmarks with a default
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
