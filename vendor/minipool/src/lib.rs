//! Minimal deterministic fork-join parallelism over [`std::thread::scope`].
//!
//! The build environment has no crates.io access, so instead of `rayon` the
//! workspace vendors this tiny, work-stealing-free pool: a [`Pool`] splits an
//! index range `0..total` into at most `threads` contiguous chunks, runs one
//! chunk per scoped OS thread, and returns the per-chunk results **in chunk
//! order**. There are no queues, no stealing and no shared mutable state, so
//! for any pure chunk function the output is bit-identical for every thread
//! count — the property the inference engine's parity tests rely on.
//!
//! Threads are spawned per call. That costs a few microseconds per fan-out,
//! which is negligible against the millisecond-scale batched similarity
//! sweeps it is used for, and keeps the crate free of `unsafe`, statics and
//! shutdown logic.
//!
//! # Example
//!
//! ```
//! use minipool::Pool;
//!
//! let pool = Pool::new(4);
//! // Sum 0..1000 by summing four contiguous chunks.
//! let partials = pool.map_chunks(1000, |range| range.sum::<usize>());
//! assert_eq!(partials.iter().sum::<usize>(), 499_500);
//! ```

#![deny(missing_docs)]

use std::ops::Range;

/// A fixed-width fork-join pool; see the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// Equivalent to [`Pool::auto`].
    fn default() -> Self {
        Self::auto()
    }
}

impl Pool {
    /// Creates a pool that fans work out over at most `threads` OS threads.
    ///
    /// `threads` is clamped to at least 1; a one-thread pool runs every chunk
    /// inline on the calling thread without spawning.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Creates a pool sized to [`available_threads`].
    pub fn auto() -> Self {
        Self::new(available_threads())
    }

    /// Maximum number of OS threads a fan-out may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..total` into at most `threads` contiguous, near-equal
    /// chunks, applies `f` to each chunk (in parallel when the pool has more
    /// than one thread) and returns the results in chunk order.
    ///
    /// The chunk boundaries depend only on `total` and the pool width, never
    /// on scheduling, so `f`'s inputs — and therefore the concatenated
    /// outputs of a pure `f` — are deterministic.
    pub fn map_chunks<T, F>(&self, total: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        let chunks = split_chunks(total, self.threads);
        match chunks.len() {
            0 => Vec::new(),
            1 => vec![f(chunks.into_iter().next().expect("one chunk"))],
            _ => std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(chunks.len());
                let mut iter = chunks.into_iter();
                // Keep the first chunk for the calling thread; it would
                // otherwise idle in `join`.
                let own = iter.next().expect("at least two chunks");
                for range in iter {
                    handles.push(scope.spawn(|| f(range)));
                }
                let mut results = vec![f(own)];
                for handle in handles {
                    results.push(handle.join().expect("minipool worker panicked"));
                }
                results
            }),
        }
    }

    /// Like [`Pool::map_chunks`] but discards the per-chunk results.
    pub fn for_each_chunk<F>(&self, total: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let _ = self.map_chunks(total, f);
    }
}

/// Number of hardware threads reported by the OS (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..total` into at most `parts` contiguous near-equal ranges.
///
/// Empty ranges are never produced: fewer than `parts` ranges are returned
/// when `total < parts`, and an empty vector when `total == 0`.
pub fn split_chunks(total: usize, parts: usize) -> Vec<Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, total);
    let base = total / parts;
    let extra = total % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_in_order() {
        for total in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_chunks(total, parts);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..total).collect::<Vec<_>>());
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let ranges = split_chunks(10, 4);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        for threads in 1..=8 {
            let pool = Pool::new(threads);
            let starts = pool.map_chunks(100, |range| range.start);
            let mut sorted = starts.clone();
            sorted.sort_unstable();
            assert_eq!(starts, sorted, "threads={threads}");
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let work = |range: Range<usize>| range.map(|i| i * i).sum::<usize>();
        let reference: usize = Pool::new(1).map_chunks(5000, work).iter().sum();
        for threads in [2usize, 3, 7, 16] {
            let sum: usize = Pool::new(threads).map_chunks(5000, work).iter().sum();
            assert_eq!(sum, reference, "threads={threads}");
        }
    }

    #[test]
    fn zero_total_runs_nothing() {
        let pool = Pool::new(8);
        let results: Vec<usize> = pool.map_chunks(0, |r| r.len());
        assert!(results.is_empty());
    }

    #[test]
    fn pool_clamps_to_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(available_threads() >= 1);
        assert!(Pool::auto().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "minipool worker panicked")]
    fn worker_panic_propagates() {
        let pool = Pool::new(2);
        let _ = pool.map_chunks(2, |range| {
            if range.start == 1 {
                panic!("boom");
            }
            range.len()
        });
    }
}
