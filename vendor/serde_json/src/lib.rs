//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the vendored `serde` stub's [`serde::Value`] tree as JSON
//! text and parses JSON text back into a [`serde::Value`] (and, via
//! [`serde::Deserialize`], into workspace types — the checkpoint loading
//! path).

#![deny(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Maximum nesting depth the parser accepts; corrupted or adversarial input
/// fails with a typed error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug)]
pub enum Error {
    /// The input is not syntactically valid JSON.
    Syntax {
        /// 1-based line of the first offending byte.
        line: usize,
        /// 1-based column of the first offending byte.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// The input is valid JSON but does not match the requested type.
    Data(DeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax {
                line,
                column,
                message,
            } => write!(
                f,
                "JSON syntax error at line {line} column {column}: {message}"
            ),
            Error::Data(e) => write!(f, "JSON data error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::Data(e)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses a JSON document into a `T`.
///
/// # Errors
///
/// Returns [`Error::Syntax`] for malformed JSON and [`Error::Data`] when the
/// document does not match `T`'s shape.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

/// Converts a [`Value`] tree into a `T`.
///
/// # Errors
///
/// Returns [`Error::Data`] when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error::Syntax`] (with line/column) for malformed input,
/// trailing garbage, or nesting deeper than an internal safety limit.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

/// Recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        Error::Syntax {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        self.skip_whitespace();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected a string object key"));
            }
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            let value = self.parse(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid unicode escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character (input is a &str, so the byte
                    // stream is valid UTF-8 outside escapes).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected a digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected a digit after the decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected a digit in the exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

/// Recursively renders one value. `indent = None` means compact output.
fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// JSON has no NaN/Infinity; callers encode those as `Value::Null` already,
/// so `n` is always finite here. Integral values print without a decimal
/// point, like upstream serde_json does for integer types — except `-0.0`,
/// which keeps its sign so float payloads round-trip bit-exactly.
fn write_number(n: f64, out: &mut String) {
    if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0.0");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("hdc".to_string())),
            (
                "dims".to_string(),
                Value::Array(vec![Value::Number(1024.0), Value::Number(2048.0)]),
            ),
            ("frac".to_string(), Value::Number(0.5)),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        let text = to_string_pretty(&value).unwrap();
        assert_eq!(
            text,
            "{\n  \"name\": \"hdc\",\n  \"dims\": [\n    1024,\n    2048\n  ],\n  \"frac\": 0.5,\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let text = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parses_what_it_prints() {
        let value = Value::Object(vec![
            ("nested".to_string(), Value::Array(vec![Value::Null])),
            ("t".to_string(), Value::Bool(true)),
            ("f".to_string(), Value::Bool(false)),
            ("n".to_string(), Value::Number(-12.75)),
            ("big".to_string(), Value::Number(3.0e20)),
            ("s".to_string(), Value::String("uni ✓ \"q\"\n".to_string())),
            ("empty_obj".to_string(), Value::Object(vec![])),
        ]);
        for text in [
            to_string(&value).unwrap(),
            to_string_pretty(&value).unwrap(),
        ] {
            assert_eq!(parse_value(&text).unwrap(), value);
        }
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for x in [
            0.1f32,
            -0.0,
            1.0,
            f32::MIN_POSITIVE,
            1.5e-40, // subnormal
            3.4028235e38,
            -7.239_517e-3,
        ] {
            let text = to_string(&x).unwrap();
            let back: f32 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(
            parse_value(r#""\u0041\u00e9\ud83d\ude00\t""#).unwrap(),
            Value::String("Aé😀\t".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "01x",
            "1 2",
            "{\"a\":}",
            "[1 2]",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            let err = parse_value(bad).unwrap_err();
            assert!(matches!(err, Error::Syntax { .. }), "{bad:?} → {err}");
        }
    }

    #[test]
    fn syntax_errors_locate_the_offending_line() {
        let err = parse_value("{\n  \"a\": 1,\n  oops\n}").unwrap_err();
        let Error::Syntax { line, .. } = err else {
            panic!("expected a syntax error");
        };
        assert_eq!(line, 3);
    }

    #[test]
    fn typed_from_str_reports_data_errors() {
        let ok: Vec<usize> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(ok, vec![1, 2, 3]);
        let err = from_str::<Vec<usize>>("[1, \"x\"]").unwrap_err();
        assert!(matches!(err, Error::Data(_)), "{err}");
    }
}
