//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the vendored `serde` stub's [`Value`](serde::Value) tree as JSON
//! text. Only serialization is implemented; the workspace does not parse
//! JSON yet.

#![deny(missing_docs)]

use serde::{Serialize, Value};
use std::fmt;

/// Error type mirroring `serde_json::Error`.
///
/// The stub serializer is infallible, so this is never actually produced;
/// it exists to keep call-site signatures identical to upstream.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Recursively renders one value. `indent = None` means compact output.
fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// JSON has no NaN/Infinity; callers encode those as `Value::Null` already,
/// so `n` is always finite here. Integral values print without a decimal
/// point, like upstream serde_json does for integer types.
fn write_number(n: f64, out: &mut String) {
    if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("hdc".to_string())),
            (
                "dims".to_string(),
                Value::Array(vec![Value::Number(1024.0), Value::Number(2048.0)]),
            ),
            ("frac".to_string(), Value::Number(0.5)),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        let text = to_string_pretty(&DirectValue(value)).unwrap();
        assert_eq!(
            text,
            "{\n  \"name\": \"hdc\",\n  \"dims\": [\n    1024,\n    2048\n  ],\n  \"frac\": 0.5,\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let text = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\"");
    }

    /// Test helper: a pre-built `Value` used as its own serialization.
    struct DirectValue(Value);

    impl Serialize for DirectValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
