//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` — the build environment has no crates.io
//! access) derive macros for the workspace's `serde` stub. Supports exactly
//! the shapes this workspace uses:
//!
//! * structs with named fields → JSON objects;
//! * enums whose variants are all unit variants → JSON strings;
//! * unit structs → JSON `null`.
//!
//! `#[derive(Deserialize)]` expands to a real implementation of the stub's
//! `Deserialize` trait: struct fields are read back out of a JSON object
//! (every field is required), unit enums parse from their variant name
//! string, and unit structs accept `null`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of type the derive input declares.
enum Input {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { Variant, ... }` (unit variants only)
    Enum { name: String, variants: Vec<String> },
}

/// Parses the derive input far enough to recover the type name and its named
/// fields / unit variants. Panics (= compile error) on unsupported shapes.
fn parse(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;

    // Skip visibility, attributes and doc comments until `struct` / `enum`.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &tt {
            let text = ident.to_string();
            if text == "struct" || text == "enum" {
                kind = Some(if text == "struct" { "struct" } else { "enum" });
                break;
            }
        }
    }
    let kind = kind.expect("serde stub derive: expected `struct` or `enum`");

    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };

    // Generic types are not needed by this workspace; reject loudly rather
    // than generating broken impls.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are not supported (type `{name}`)");
        }
    }

    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                break group.stream();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Input::UnitStruct { name };
            }
            Some(_) => continue,
            None => {
                if kind == "struct" {
                    return Input::UnitStruct { name };
                }
                panic!("serde stub derive: enum `{name}` has no body");
            }
        }
    };

    if kind == "struct" {
        Input::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else {
        Input::Enum {
            name,
            variants: parse_unit_variants(body),
        }
    }
}

/// Extracts field names from the contents of a struct's brace group.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes on the field.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next(); // the [...] group
            } else {
                break;
            }
        }
        // Skip `pub` / `pub(...)`.
        if let Some(TokenTree::Ident(ident)) = tokens.peek() {
            if ident.to_string() == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(ident)) => fields.push(ident.to_string()),
            Some(other) => panic!("serde stub derive: expected field name, got {other:?}"),
            None => break,
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                None => break,
                _ => {}
            }
            tokens.next();
        }
        if tokens.peek().is_none() {
            break;
        }
    }
    fields
}

/// Extracts variant names from the contents of an enum's brace group,
/// panicking on variants that carry data.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(ident)) => variants.push(ident.to_string()),
            Some(other) => panic!("serde stub derive: expected variant name, got {other:?}"),
            None => break,
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                panic!("serde stub derive: only unit enum variants are supported, got {other:?}")
            }
            None => break,
        }
    }
    variants
}

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse(input) {
        Input::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "object.push((\"{f}\".to_string(), \
                         serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut object: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(object)\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String(\"{v}\".to_string()),\n"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated
        .parse()
        .expect("serde stub derive: generated invalid Rust")
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse(input) {
        Input::Struct { name, fields } => {
            let reads: String = fields
                .iter()
                .map(|f| format!("{f}: serde::de::field(entries, \"{f}\", \"{name}\")?,\n"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(value: &serde::Value) \
                         -> ::std::result::Result<Self, serde::DeError> {{\n\
                         let entries = serde::de::expect_object(value, \"{name}\")?;\n\
                         ::std::result::Result::Ok(Self {{\n{reads}}})\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(value: &serde::Value) \
                     -> ::std::result::Result<Self, serde::DeError> {{\n\
                     match value {{\n\
                         serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                         other => ::std::result::Result::Err(\n\
                             serde::DeError::expected(\"null\", other)\
                                 .in_field(\"{name}\")),\n\
                     }}\n\
                 }}\n\
             }}"
        ),
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(value: &serde::Value) \
                         -> ::std::result::Result<Self, serde::DeError> {{\n\
                         match value {{\n\
                             serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => ::std::result::Result::Err(\n\
                                     serde::DeError::unknown_variant(other, \"{name}\")),\n\
                             }},\n\
                             other => ::std::result::Result::Err(\n\
                                 serde::DeError::expected(\"string\", other)\
                                     .in_field(\"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated
        .parse()
        .expect("serde stub derive: generated invalid Rust")
}
