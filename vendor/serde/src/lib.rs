//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization facade: a JSON-shaped [`Value`] tree, a [`Serialize`]
//! trait producing it, derive macros (re-exported from the vendored
//! `serde_derive`), and a [`Deserialize`] marker trait. The sibling
//! `serde_json` stub renders [`Value`] to text.
//!
//! This is *not* upstream serde — only the surface this workspace uses
//! (deriving on plain structs/unit enums and `serde_json::to_string_pretty`)
//! is implemented.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree, the target of [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite floats serialize as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Types that can be converted into a [`Value`] tree.
///
/// The derive macro implements this for structs with named fields (as
/// objects) and enums with unit variants (as strings).
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring upstream serde's `Deserialize`.
///
/// Nothing in the workspace deserializes yet; the derive macro implements
/// this empty trait so `#[derive(Deserialize)]` keeps compiling.
pub trait Deserialize {}

macro_rules! impl_serialize_number {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_number!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(f64::from(*self))
        } else {
            Value::Null
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(*self)
        } else {
            Value::Null
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(value) => value.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
