//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization facade: a JSON-shaped [`Value`] tree, a [`Serialize`]
//! trait producing it, a [`Deserialize`] trait consuming it, and derive
//! macros (re-exported from the vendored `serde_derive`). The sibling
//! `serde_json` stub renders [`Value`] to text and parses text back into a
//! [`Value`].
//!
//! This is *not* upstream serde — only the surface this workspace uses
//! (deriving on plain structs/unit enums, `serde_json::to_string_pretty`,
//! and `serde_json::from_str` for checkpoint loading) is implemented.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree, the target of [`Serialize`] and the source of
/// [`Deserialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite floats serialize as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's JSON kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrows the entry list if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object value (`None` for non-objects and
    /// missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// Types that can be converted into a [`Value`] tree.
///
/// The derive macro implements this for structs with named fields (as
/// objects) and enums with unit variants (as strings).
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Typed error produced when a [`Value`] tree cannot be converted into the
/// requested type.
///
/// Carries a dotted field path (innermost last) so checkpoint loaders can
/// report *where* a malformed document went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    path: Vec<String>,
    message: String,
}

impl DeError {
    /// Creates an error with a free-form message and an empty path.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            path: Vec::new(),
            message: message.into(),
        }
    }

    /// "expected X, got Y" for a mismatched [`Value`] kind.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::new(format!("expected {what}, got {}", got.kind()))
    }

    /// A missing object field.
    pub fn missing_field(field: &str, type_name: &str) -> Self {
        Self::new(format!("missing field `{field}` of `{type_name}`"))
    }

    /// An enum string that matches no variant.
    pub fn unknown_variant(found: &str, type_name: &str) -> Self {
        Self::new(format!("unknown `{type_name}` variant `{found}`"))
    }

    /// Returns the error with `segment` prepended to the field path.
    #[must_use]
    pub fn in_field(mut self, segment: impl Into<String>) -> Self {
        self.path.insert(0, segment.into());
        self
    }

    /// The underlying message (without the path prefix).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The dotted field path, empty at the document root.
    pub fn path(&self) -> String {
        self.path.join(".")
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            f.write_str(&self.message)
        } else {
            write!(f, "{}: {}", self.path.join("."), self.message)
        }
    }
}

impl std::error::Error for DeError {}

/// Types that can be reconstructed from a [`Value`] tree.
///
/// The derive macro implements this for the same shapes as [`Serialize`]:
/// structs with named fields, unit structs and unit enums. Derived state a
/// type does not serialize must be rebuilt by a hand-written implementation
/// (see `hdc::ItemMemory`).
pub trait Deserialize: Sized {
    /// Converts a [`Value`] into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch between the value
    /// tree and the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Helpers used by the generated [`Deserialize`] implementations.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Requires `value` to be an object, naming `type_name` on failure.
    pub fn expect_object<'v>(
        value: &'v Value,
        type_name: &str,
    ) -> Result<&'v [(String, Value)], DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value).in_field(type_name.to_string()))
    }

    /// Deserializes field `name` out of an object's entry list, adding the
    /// field name to the error path on failure.
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
        type_name: &str,
    ) -> Result<T, DeError> {
        let value = entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::missing_field(name, type_name))?;
        T::from_value(value).map_err(|e| e.in_field(name.to_string()))
    }
}

/// Largest magnitude an integer can have and still be exactly representable
/// as an `f64` (2^53).
const F64_EXACT_INT_BOUND: f64 = 9_007_199_254_740_992.0;

macro_rules! impl_serialize_number {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                // Values past the f64 mantissa (e.g. large u64 seeds) would
                // be silently rounded by the `as f64` cast; emit their exact
                // decimal form as a string instead so they round-trip.
                let wide = *self as f64;
                if wide.abs() >= F64_EXACT_INT_BOUND {
                    Value::String(self.to_string())
                } else {
                    Value::Number(wide)
                }
            }
        }
    )*};
}

impl_serialize_number!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_deserialize_integer {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(n) => {
                        if !n.is_finite() || n.fract() != 0.0 {
                            return Err(DeError::new(format!(
                                "expected an integer, got {n}"
                            )));
                        }
                        // Numbers past the f64 mantissa would deserialize to
                        // a different integer than was saved; the writer
                        // emits those as strings, so a number here is
                        // corrupt.
                        if n.abs() >= F64_EXACT_INT_BOUND {
                            return Err(DeError::new(format!(
                                "integer {n} exceeds the exactly-representable range"
                            )));
                        }
                        let wide = *n as i128;
                        <$ty>::try_from(wide).map_err(|_| {
                            DeError::new(format!(
                                "integer {n} out of range for {}",
                                stringify!($ty)
                            ))
                        })
                    }
                    // Exact decimal form used by the writer for values past
                    // the f64 mantissa.
                    Value::String(s) => s.parse::<$ty>().map_err(|_| {
                        DeError::new(format!(
                            "`{s}` is not a valid {}",
                            stringify!($ty)
                        ))
                    }),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_deserialize_integer!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(f64::from(*self))
        } else {
            Value::Null
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            // `f64::from(x as f32)` is exact and the JSON writer emits a
            // shortest round-tripping decimal, so this cast restores the
            // original f32 bits.
            Value::Number(n) => Ok(*n as f32),
            // Non-finite floats serialize as `null`.
            Value::Null => Ok(f32::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("boolean", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        String::from_value(value).map(std::path::PathBuf::from)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(value) => value.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Array(items) = value else {
            return Err(DeError::expected("array", value));
        };
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_value(item).map_err(|e| e.in_field(format!("[{i}]"))))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected an array of length {N}, got {len}")))
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let Value::Object(entries) = value else {
            return Err(DeError::expected("object", value));
        };
        entries
            .iter()
            .map(|(k, v)| {
                V::from_value(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.in_field(k.clone()))
            })
            .collect()
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        BTreeMap::<String, V>::from_value(value).map(|m| m.into_iter().collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => Ok((
                A::from_value(&items[0]).map_err(|e| e.in_field("[0]"))?,
                B::from_value(&items[1]).map_err(|e| e.in_field("[1]"))?,
            )),
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0]).map_err(|e| e.in_field("[0]"))?,
                B::from_value(&items[1]).map_err(|e| e.in_field("[1]"))?,
                C::from_value(&items[2]).map_err(|e| e.in_field("[2]"))?,
            )),
            other => Err(DeError::expected("3-element array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        let x = 0.1f32;
        assert_eq!(f32::from_value(&x.to_value()), Ok(x));
        assert!(f32::from_value(&f32::NAN.to_value()).unwrap().is_nan());
    }

    #[test]
    fn integer_rejects_fractions_and_ranges() {
        assert!(u8::from_value(&Value::Number(1.5)).is_err());
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(u64::from_value(&Value::Number(-1.0)).is_err());
        assert!(usize::from_value(&Value::String("x5".into())).is_err());
        assert!(i64::from_value(&Value::Number(1e18)).is_err());
        assert!(u8::from_value(&Value::Bool(true)).is_err());
    }

    /// Integers past the f64 mantissa round-trip through their exact string
    /// form instead of being silently rounded (and then rejected on load).
    #[test]
    fn huge_integers_round_trip_exactly() {
        for x in [u64::MAX, u64::MAX - 1, 1u64 << 53, (1u64 << 53) - 1] {
            let value = x.to_value();
            assert_eq!(u64::from_value(&value), Ok(x), "{x}");
        }
        assert_eq!(u64::MAX.to_value(), Value::String(u64::MAX.to_string()));
        assert_eq!(
            ((1u64 << 53) - 1).to_value(),
            Value::Number(((1u64 << 53) - 1) as f64)
        );
        for x in [i64::MIN, -(1i64 << 53)] {
            assert_eq!(i64::from_value(&x.to_value()), Ok(x), "{x}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()), Ok(v));
        let pair = (3usize, -2i8);
        assert_eq!(<(usize, i8)>::from_value(&pair.to_value()), Ok(pair));
        let triple = (1usize, 2usize, 3usize);
        assert_eq!(
            <(usize, usize, usize)>::from_value(&triple.to_value()),
            Ok(triple)
        );
        let opt: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&opt.to_value()), Ok(None));
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), vec![1.0f32]);
        assert_eq!(
            BTreeMap::<String, Vec<f32>>::from_value(&map.to_value()),
            Ok(map)
        );
    }

    #[test]
    fn errors_carry_paths() {
        let v = Value::Array(vec![Value::Number(1.0), Value::Bool(true)]);
        let err = Vec::<usize>::from_value(&v).unwrap_err();
        assert_eq!(err.path(), "[1]");
        assert!(err.to_string().contains("expected integer"));
        let v = Value::Array(vec![Value::String("x".into())]);
        let err = Vec::<usize>::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("not a valid usize"));
    }
}
