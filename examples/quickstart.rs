//! Quickstart: build the HDC attribute encoder, train the zero-shot
//! classifier end to end on a small synthetic dataset, and classify images
//! of classes the model has never seen.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
use hdc_zsc::{ModelConfig, Pipeline, TrainConfig};

fn main() {
    // 1. Generate a synthetic CUB-200-like dataset (the stand-in for the real
    //    images + pretrained backbone; see DESIGN.md §1).
    let mut config = DatasetConfig::tiny(42);
    config.num_classes = 40;
    config.images_per_class = 12;
    config.feature_dim = 256;
    let data = CubLikeDataset::generate(&config);
    println!(
        "dataset: {} classes × {} images, {} attributes in {} groups over {} values",
        config.num_classes,
        config.images_per_class,
        data.schema().num_attributes(),
        data.schema().num_groups(),
        data.schema().num_values()
    );

    // 2. Configure the paper's model: ResNet50-style backbone features, an FC
    //    projection, and the stationary HDC attribute encoder.
    let model_config = ModelConfig::paper_default().with_embedding_dim(256);
    let train_config = TrainConfig::paper_default();

    // 3. Run the three-phase pipeline on the zero-shot split: phase II
    //    (attribute extraction) and phase III (classification fine-tuning)
    //    train only on the seen classes; evaluation uses the unseen ones.
    let split = data.split(SplitKind::Zs);
    println!(
        "zero-shot split: {} seen classes for training, {} unseen classes for evaluation",
        split.train_classes().len(),
        split.eval_classes().len()
    );
    let outcome = Pipeline::new(model_config, train_config).run(&data, SplitKind::Zs, 0);

    // 4. Report what happened.
    println!(
        "\nphase II (attribute extraction) loss: {:?} → {:?}",
        outcome.phase2_history.epoch_loss.first(),
        outcome.phase2_history.final_loss()
    );
    println!(
        "phase III (zero-shot fine-tuning) loss: {:?} → {:?}",
        outcome.phase3_history.epoch_loss.first(),
        outcome.phase3_history.final_loss()
    );
    println!("\nzero-shot evaluation on unseen classes: {}", outcome.zsc);
    println!(
        "chance level would be {:.1}%",
        100.0 / split.eval_classes().len() as f32
    );
    println!("model size: {}", outcome.params);
}
