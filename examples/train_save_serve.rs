//! Train once, serve many: the full deployment lifecycle.
//!
//! Trains the zero-shot classifier on a small synthetic dataset, saves the
//! exact trained model to a versioned JSON checkpoint, reloads it, and puts
//! a micro-batching [`serve::QueryServer`] in front of the reloaded model to
//! answer concurrent queries.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example train_save_serve
//! ```

use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
use hdc_zsc::{Checkpoint, ModelConfig, Pipeline, TrainConfig};
use serve::{QueryServer, ServerConfig};

fn main() {
    // 1. Train. `run_returning_model` hands back the exact model behind the
    //    reported outcome — nothing is retrained.
    let mut config = DatasetConfig::tiny(7);
    config.num_classes = 24;
    config.images_per_class = 10;
    config.feature_dim = 128;
    let data = CubLikeDataset::generate(&config);
    let pipeline = Pipeline::new(
        ModelConfig::tiny().with_embedding_dim(128),
        TrainConfig::fast(),
    );
    let (outcome, model) = pipeline.run_returning_model(&data, SplitKind::Zs, 0);
    println!("trained: {}", outcome.zsc);

    // 2. Save a versioned checkpoint next to the system temp dir.
    let path = std::env::temp_dir().join("hdc_zsc_example_checkpoint.json");
    Checkpoint::capture(&model, data.schema())
        .save_json(&path)
        .expect("write checkpoint");
    drop(model);
    println!("checkpoint written to {}", path.display());

    // 3. Reload it — schema and dimension validation happen here — and serve
    //    the unseen classes through the engine's packed popcount path.
    let checkpoint = Checkpoint::load_json(&path).expect("reload checkpoint");
    let split = data.split(SplitKind::Zs);
    let labels: Vec<String> = split
        .eval_classes()
        .iter()
        .map(|c| format!("class{c:03}"))
        .collect();
    let class_attributes = data.class_attribute_matrix(split.eval_classes());
    let server = QueryServer::from_checkpoint(
        checkpoint,
        data.schema(),
        labels,
        &class_attributes,
        ServerConfig::default(),
    )
    .expect("server starts");

    // 4. Concurrent callers: every evaluation image is submitted as its own
    //    query; the admission queue coalesces them into engine batches.
    let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
    let mut correct = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..eval_x.rows())
            .map(|r| {
                let server = &server;
                let row = eval_x.row(r).to_vec();
                scope.spawn(move || server.query(&row).expect("query served"))
            })
            .collect();
        for (r, handle) in handles.into_iter().enumerate() {
            let top = handle.join().expect("caller thread");
            let expected = format!("class{:03}", eval_labels[r]);
            if top[0].0 == expected {
                correct += 1;
            }
        }
    });
    let stats = server.stats();
    // Serving runs the binarized popcount path (sign of the embeddings
    // against sign of the class embeddings) — the paper's edge-deployment
    // representation — so its accuracy differs from the dense-cosine
    // evaluation above; what is guaranteed is bit-identity with scoring the
    // same query alone through the same packed memory.
    println!(
        "served {} queries in {} engine batches (mean batch {:.1}); top-1 {:.1}%",
        stats.queries,
        stats.batches,
        stats.mean_batch(),
        100.0 * correct as f32 / eval_x.rows() as f32
    );

    // 5. Serve-time hot swap: register one of the *training* classes through
    //    the live server — no restart, no queue drain; only the memory shard
    //    the class routes to is repacked, and the next batch can serve it.
    let extra = split.train_classes()[0];
    let extra_label = format!("class{extra:03}");
    let extra_attr = data.class_attribute_matrix(&[extra]);
    let snapshot = server
        .register_class(extra_label.clone(), extra_attr.row(0))
        .expect("class registers");
    println!(
        "registered {extra_label} live in snapshot v{} ({} classes servable)",
        snapshot.version(),
        snapshot.memory().len()
    );
    let (train_x, _) = data.features_and_labels(&[extra]);
    let top = server.query(train_x.row(0)).expect("query served");
    println!(
        "first query after the swap answered with top-1 {}",
        top[0].0
    );
}
