//! Attribute extraction (the paper's phase-II task, Table I): train the
//! image encoder against the stationary HDC attribute dictionary and inspect
//! the per-attribute-group WMAP / top-1 metrics.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example attribute_extraction
//! ```

use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
use hdc_zsc::{
    evaluate_attribute_extraction, AttributeExtractionTrainer, ModelConfig, TrainConfig, ZscModel,
};

fn main() {
    // Small noZS-style setup: the same classes appear in train and test, and
    // the model predicts the 312 attributes of each image.
    let mut config = DatasetConfig::tiny(7);
    config.num_classes = 30;
    config.images_per_class = 16;
    config.feature_dim = 256;
    let data = CubLikeDataset::generate(&config);
    let split = data.split(SplitKind::NoZs);

    // Instance-level train/test split over the shared classes (3:1).
    let indices = data.instance_indices(split.train_classes());
    let (train_idx, test_idx): (Vec<usize>, Vec<usize>) =
        indices
            .iter()
            .enumerate()
            .fold((Vec::new(), Vec::new()), |(mut tr, mut te), (pos, &i)| {
                if pos % 4 == 3 {
                    te.push(i)
                } else {
                    tr.push(i)
                }
                (tr, te)
            });
    let train_x = data.features().select_rows(&train_idx);
    let train_t = data.instances().attribute_targets(&train_idx);
    let test_x = data.features().select_rows(&test_idx);
    let test_t = data.instances().attribute_targets(&test_idx);

    let mut model = ZscModel::new(
        &ModelConfig::paper_default().with_embedding_dim(256),
        data.schema(),
        config.feature_dim,
    );
    println!(
        "attribute dictionary: {} codevectors of dimension {} built from {} group + {} value atomic hypervectors",
        model.phase2_dictionary().rows(),
        model.phase2_dictionary().cols(),
        data.schema().num_groups(),
        data.schema().num_values()
    );

    let before = evaluate_attribute_extraction(&model, &test_x, &test_t, data.schema());
    let trainer = AttributeExtractionTrainer::new(TrainConfig::paper_default());
    let history = trainer.train(&mut model, &train_x, &train_t);
    let after = evaluate_attribute_extraction(&model, &test_x, &test_t, data.schema());

    println!(
        "\nphase II training: {} epochs, loss {:.3} → {:.3}",
        history.epochs(),
        history.epoch_loss.first().copied().unwrap_or(f32::NAN),
        history.final_loss().unwrap_or(f32::NAN)
    );
    println!(
        "mean WMAP:  {:.1}% → {:.1}%   (higher is better)",
        before.mean_wmap, after.mean_wmap
    );
    println!(
        "mean top-1: {:.1}% → {:.1}%",
        before.mean_top1, after.mean_top1
    );

    println!("\nper-group results after training (first 10 groups):");
    for group in after.per_group.iter().take(10) {
        println!(
            "  {:<18} WMAP {:>5.1}%   top-1 {:>5.1}%",
            group.group, group.wmap, group.top1
        );
    }
}
