//! Accuracy-vs-parameters comparison (a miniature of Fig. 4): trains
//! HDC-ZSC, the Trainable-MLP variant and the ESZSL baseline on the same
//! synthetic zero-shot split and prints them next to the literature
//! reference points.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example pareto_comparison
//! ```
//!
//! For the full harness (more seeds, JSON output, larger scale) use
//! `cargo run --release -p bench --bin fig4_pareto`.

use baselines::eszsl::{Eszsl, EszslConfig};
use baselines::reference::zsc_references;
use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
use hdc_zsc::{AttributeEncoderKind, ModelConfig, Pipeline, TrainConfig};

fn main() {
    let mut config = DatasetConfig::tiny(9);
    config.num_classes = 60;
    config.images_per_class = 12;
    config.feature_dim = 256;
    let data = CubLikeDataset::generate(&config);
    let split = data.split(SplitKind::Zs);
    let chance = 100.0 / split.eval_classes().len() as f32;
    println!(
        "zero-shot split: {} seen / {} unseen classes (chance {:.1}%)\n",
        split.train_classes().len(),
        split.eval_classes().len(),
        chance
    );

    // --- Our two models. ---
    let mut measured: Vec<(String, f32, f32)> = Vec::new();
    for (name, kind) in [
        ("HDC-ZSC", AttributeEncoderKind::Hdc),
        ("Trainable-MLP", AttributeEncoderKind::TrainableMlp),
    ] {
        let model_cfg = ModelConfig::paper_default()
            .with_embedding_dim(256)
            .with_attribute_encoder(kind);
        let outcome =
            Pipeline::new(model_cfg, TrainConfig::paper_default()).run(&data, SplitKind::Zs, 0);
        measured.push((
            name.to_string(),
            outcome.zsc.top1 * 100.0,
            outcome.params.total_millions(),
        ));
    }

    // --- ESZSL on the same features. ---
    let (train_x, train_labels) = data.features_and_labels(split.train_classes());
    let train_local = CubLikeDataset::to_local_labels(&train_labels, split.train_classes());
    let train_sigs = data.class_attribute_matrix(split.train_classes());
    let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
    let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
    let eval_sigs = data.class_attribute_matrix(split.eval_classes());
    let eszsl = Eszsl::fit(&train_x, &train_local, &train_sigs, &EszslConfig::default());
    let eszsl_acc = eszsl.accuracy(&eval_x, &eval_local, &eval_sigs) * 100.0;
    measured.push((
        "ESZSL (ours re-impl.)".to_string(),
        eszsl_acc,
        42.5 + eszsl.num_params() as f32 / 1e6,
    ));

    println!("measured on this synthetic run:");
    for (name, acc, params) in &measured {
        println!("  {name:<22} top-1 {acc:>5.1}%   ≈{params:.1}M parameters");
    }

    println!("\nliterature points from the paper's Fig. 4 (CUB-200):");
    for point in zsc_references() {
        println!(
            "  {:<22} top-1 {:>5.1}%   {:>5.1}M parameters   [{}]",
            point.name, point.top1_percent, point.params_millions, point.category
        );
    }

    let hdc = measured[0].1;
    let mlp = measured[1].1;
    println!(
        "\nshape summary: HDC-ZSC vs ESZSL: {:+.1}%; HDC-ZSC vs Trainable-MLP: {:+.1}%",
        hdc - eszsl_acc,
        hdc - mlp
    );
    println!("(the paper reports +9.9% over ESZSL at 1.72× fewer parameters)");
}
