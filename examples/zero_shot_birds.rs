//! Zero-shot bird identification, step by step — the workload the paper's
//! introduction motivates: a model that has never seen a duck recognises one
//! from its attribute description ("bill colour: yellow, head colour: green,
//! wing shape: rounded, …").
//!
//! This example builds the model manually (instead of using the `Pipeline`
//! convenience) so every stage of Fig. 1 / Fig. 3 is visible, then inspects
//! individual predictions on unseen classes.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example zero_shot_birds
//! ```

use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
use hdc_zsc::{
    evaluate_zsc, AttributeExtractionTrainer, ModelConfig, TrainConfig, ZscModel, ZscTrainer,
};

fn main() {
    let mut config = DatasetConfig::tiny(3);
    config.num_classes = 40;
    config.images_per_class = 12;
    config.feature_dim = 256;
    let data = CubLikeDataset::generate(&config);
    let split = data.split(SplitKind::Zs);

    // --- Image encoder γ(·) and stationary attribute encoder ϕ(·). ---
    let mut model = ZscModel::new(
        &ModelConfig::paper_default().with_embedding_dim(256),
        data.schema(),
        config.feature_dim,
    );
    println!(
        "model: embedding dim {}, attribute encoder = {}, temperature K = {:.3}",
        model.embedding_dim(),
        model.attribute_encoder_kind(),
        model.temperature()
    );

    // --- Phase II: attribute-extraction pre-training on seen classes. ---
    let (train_x, train_labels) = data.features_and_labels(split.train_classes());
    let (_, train_attr) = data.features_and_attributes(split.train_classes());
    let cfg = TrainConfig::paper_default();
    let p2 = AttributeExtractionTrainer::new(cfg).train(&mut model, &train_x, &train_attr);
    println!(
        "phase II: {} epochs, BCE loss {:.3} → {:.3}",
        p2.epochs(),
        p2.epoch_loss.first().copied().unwrap_or(f32::NAN),
        p2.final_loss().unwrap_or(f32::NAN)
    );

    // --- Phase III: zero-shot fine-tuning against the seen classes only. ---
    let train_local = CubLikeDataset::to_local_labels(&train_labels, split.train_classes());
    let train_class_attr = data.class_attribute_matrix(split.train_classes());
    let p3 = ZscTrainer::new(cfg).train(&mut model, &train_x, &train_local, &train_class_attr);
    println!(
        "phase III: {} epochs, CE loss {:.3} → {:.3}",
        p3.epochs(),
        p3.epoch_loss.first().copied().unwrap_or(f32::NAN),
        p3.final_loss().unwrap_or(f32::NAN)
    );

    // --- Inference on classes the model has never seen (Fig. 3). ---
    let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
    let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
    let eval_class_attr = data.class_attribute_matrix(split.eval_classes());
    let report = evaluate_zsc(&model, &eval_x, &eval_local, &eval_class_attr);
    println!(
        "\nzero-shot evaluation over {} unseen classes: {}",
        split.eval_classes().len(),
        report
    );

    // Inspect a few individual predictions with their class names and the
    // attribute evidence the prediction is based on.
    let predictions = model.predict(&eval_x, &eval_class_attr);
    println!("\nsample predictions (unseen classes):");
    for i in (0..eval_x.rows()).step_by(eval_x.rows() / 5 + 1) {
        let true_class = split.eval_classes()[eval_local[i]];
        let predicted_class = split.eval_classes()[predictions[i]];
        let status = if true_class == predicted_class {
            "✓"
        } else {
            "✗"
        };
        // Describe the true class by its dominant attribute in 3 groups.
        let describe = |class: usize| {
            (0..3)
                .map(|g| {
                    data.schema()
                        .attribute_name(data.classes().dominant_attribute(class, g))
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "  image of {:<12} → predicted {:<12} {status}   (true class looks like: {})",
            data.classes().names()[true_class],
            data.classes().names()[predicted_class],
            describe(true_class)
        );
    }
}
