#!/usr/bin/env bash
# Fails when a relative markdown link in the documentation points at a
# file or directory that does not exist.
#
#   bash scripts/check-links.sh
#
# Checked files: README.md, every crate README, and docs/*.md. Only
# relative targets are checked — http(s) links would need the network
# (the build is offline by design) and intra-doc rust links are already
# covered by `cargo doc` with -D warnings. Anchors (#section) are
# stripped before the existence check.
set -u

cd "$(dirname "$0")/.."

files=(README.md docs/*.md crates/*/README.md)
failures=0
checked=0

for file in "${files[@]}"; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # Inline markdown links: [text](target). Reference definitions
    # ([name]: target) are rare here and intentionally out of scope.
    while IFS= read -r target; do
        case "$target" in
            http://* | https://* | mailto:* | \#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN  $file -> $target" >&2
            failures=$((failures + 1))
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*(\(.*\))/\1/')
done

if [ "$failures" -gt 0 ]; then
    echo "check-links: $failures broken relative link(s)" >&2
    exit 1
fi
echo "check-links: $checked relative link(s) OK"
