//! Scenario/golden regression harness.
//!
//! Each scenario is a seeded end-to-end script (train → serve → register
//! classes → re-query, or a pure engine mutation sequence) whose outcome is
//! rendered to a canonical JSON document and compared **byte-for-byte**
//! against a committed golden file under `tests/scenarios/golden/`. Because
//! everything in the workspace is a pure function of `(config, seed)` and
//! the engine's scoring paths are bit-identical across thread and shard
//! counts, these documents pin the system's externally visible behaviour —
//! logits, labels, metrics, snapshot versions — across releases: any future
//! PR that changes a single output bit turns up as a golden diff instead of
//! slipping through.
//!
//! ## Blessing new goldens
//!
//! When a change *intentionally* alters an outcome (or a new scenario is
//! added), regenerate the goldens with:
//!
//! ```bash
//! SCENARIO_BLESS=1 cargo test --test scenarios
//! ```
//!
//! and commit the rewritten files. Without `SCENARIO_BLESS`, a mismatch
//! fails the test and writes the actual document to
//! `target/scenario-diffs/<name>.actual.json` so CI can upload it and the
//! divergence can be inspected with any JSON diff tool.

use baselines::{DirectAttributePrediction, Eszsl, EszslConfig, GzslOutcome, RandomBaseline};
use dataset::{
    AttributeSchema, CubLikeDataset, DatasetConfig, GzslWorkload, GzslWorkloadConfig, SplitKind,
    StreamWorkload, StreamWorkloadConfig,
};
use hdc_zsc::{evaluate_gzsl, ModelConfig, Pipeline, SimilarityCalibrator, TrainConfig, ZscModel};
use serde::{Serialize, Value};
use serve::{wal, DurabilityConfig, QueryServer, ServerConfig, SyncPolicy};
use std::path::PathBuf;
use tensor::Matrix;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/scenarios/golden")
        .join(format!("{name}.json"))
}

fn diff_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/scenario-diffs")
        .join(format!("{name}.actual.json"))
}

/// Renders `document` canonically and compares it against the committed
/// golden; see the module docs for the bless workflow.
fn check_golden(name: &str, document: &Value) {
    let actual = serde_json::to_string_pretty(document).expect("scenario document renders") + "\n";
    let path = golden_path(name);
    if std::env::var_os("SCENARIO_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &actual).expect("write golden");
        eprintln!("scenario `{name}`: blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "scenario `{name}`: no golden at {} ({e}); run `SCENARIO_BLESS=1 cargo test \
             --test scenarios` and commit the result",
            path.display()
        )
    });
    if actual != expected {
        let diff = diff_path(name);
        std::fs::create_dir_all(diff.parent().expect("diff dir")).expect("create diff dir");
        std::fs::write(&diff, &actual).expect("write actual document");
        // Point at the first diverging line to make CI logs useful without
        // downloading the artifact.
        let line = actual
            .lines()
            .zip(expected.lines())
            .position(|(a, e)| a != e)
            .map_or(actual.lines().count().min(expected.lines().count()), |l| {
                l + 1
            });
        panic!(
            "scenario `{name}` diverged from its golden (first difference at line {line}).\n\
             golden:  {}\nactual:  {}\n\
             If the change is intentional, re-bless with `SCENARIO_BLESS=1 cargo test --test \
             scenarios` and commit the new golden.",
            path.display(),
            diff.display()
        );
    }
}

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// `(label, similarity)` pairs as a JSON array; the float similarities
/// round-trip bit-exactly through the shortest-representation formatter, so
/// a byte-equal golden pins the exact logit bits.
fn scored(top: &[(String, f32)]) -> Value {
    Value::Array(
        top.iter()
            .map(|(label, sim)| {
                object(vec![
                    ("label", label.to_value()),
                    ("similarity", sim.to_value()),
                ])
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Pipeline golden scenarios
// ---------------------------------------------------------------------------

/// `Pipeline::run` on the seeded synthetic dataset: the committed golden is
/// the full serialized `PipelineOutcome` (accuracies, per-group WMAP, loss
/// curves, parameter accounting), bit-exact.
fn pipeline_document(split: SplitKind, name: &str) -> Value {
    let mut config = DatasetConfig::tiny(29);
    config.num_classes = 12;
    config.images_per_class = 6;
    config.feature_dim = 48;
    let data = CubLikeDataset::generate(&config);
    let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(3));
    let outcome = pipeline.run(&data, split, 1);
    object(vec![
        ("scenario", name.to_value()),
        ("dataset_seed", 29u64.to_value()),
        ("pipeline_seed", 1u64.to_value()),
        ("split", format!("{split:?}").to_value()),
        ("outcome", outcome.to_value()),
    ])
}

#[test]
fn scenario_pipeline_zs() {
    check_golden(
        "pipeline_zs",
        &pipeline_document(SplitKind::Zs, "pipeline_zs"),
    );
}

#[test]
fn scenario_pipeline_nozs() {
    check_golden(
        "pipeline_nozs",
        &pipeline_document(SplitKind::NoZs, "pipeline_nozs"),
    );
}

// ---------------------------------------------------------------------------
// Sharded memory mutation scenario
// ---------------------------------------------------------------------------

/// A pure engine script: a deterministic add/update/remove sequence against
/// a 3-shard memory at a ragged dimension, dumping shard occupancy and
/// top-k outcomes (including `k = 0` and `k` past the class count) after
/// every stage.
#[test]
fn scenario_sharded_memory_ops() {
    let dim = 70usize; // ragged: 2 words, 6 live tail bits
    let mut state = 0x5eed_cafe_f00du64;
    let mut next_signs = || -> Vec<i8> {
        (0..dim)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 63 == 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    };
    let mut memory = engine::ShardedClassMemory::new(dim, 3);
    let probe = engine::pack_signs(&next_signs());
    let mut stages: Vec<Value> = Vec::new();
    let mut record = |stage: &str, memory: &engine::ShardedClassMemory| {
        let shard_sizes: Vec<usize> = (0..memory.num_shards())
            .map(|s| memory.shard(s).len())
            .collect();
        let dump = |k: usize| {
            scored(
                &memory
                    .top_k(&probe, k)
                    .into_iter()
                    .map(|(label, sim)| (label.to_string(), sim))
                    .collect::<Vec<_>>(),
            )
        };
        stages.push(object(vec![
            ("stage", stage.to_value()),
            ("classes", memory.len().to_value()),
            ("shard_sizes", shard_sizes.to_value()),
            ("top_0", dump(0)),
            ("top_3", dump(3)),
            ("top_all_plus_5", dump(memory.len() + 5)),
        ]));
    };
    let rows: Vec<Vec<i8>> = (0..10).map(|_| next_signs()).collect();
    for (c, row) in rows.iter().take(7).enumerate() {
        memory.add_class(format!("class{c:02}"), row);
    }
    record("seed_7_classes", &memory);
    memory.update_class("class02", &rows[7]);
    memory.update_class("class05", &rows[8]);
    record("update_2_classes", &memory);
    memory.remove_class("class01");
    memory.remove_class("class04");
    record("remove_2_classes", &memory);
    memory.add_class("class07", &rows[9]);
    memory.add_class("class02", &rows[0]); // upsert an existing label
    record("add_after_remove", &memory);
    check_golden(
        "sharded_memory_ops",
        &object(vec![
            ("scenario", "sharded_memory_ops".to_value()),
            ("dim", dim.to_value()),
            ("shards", 3usize.to_value()),
            ("stages", Value::Array(stages)),
        ]),
    );
}

// ---------------------------------------------------------------------------
// Routed index mutation scenario
// ---------------------------------------------------------------------------

/// The coarse-to-fine routed index under the same kind of deterministic
/// mutation script: adds, updates, removes, an upsert, and an explicit
/// re-cluster against a 3-cluster index at a ragged dimension. Every stage
/// dumps the cluster shape, the candidate count the probe visits under
/// partial probing (`nprobe = 2`), the partial-probe top-3, and the
/// full-probe top-3 — the latter must stay bit-identical to the exhaustive
/// scan forever, and the golden pins both alongside the routing structure
/// that produced them.
#[test]
fn scenario_routed_memory_ops() {
    let dim = 70usize; // ragged: 2 words, 6 live tail bits
    let mut state = 0x5eed_cafe_f00du64;
    let mut next_signs = || -> Vec<i8> {
        (0..dim)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 63 == 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    };
    let mut routed = engine::RoutedClassMemory::new(
        dim,
        engine::RoutedConfig {
            clusters: 3,
            nprobe: 2,
            ..engine::RoutedConfig::default()
        },
    );
    let mut exhaustive = engine::PackedClassMemory::new(dim);
    let probe = engine::pack_signs(&next_signs());
    let mut stages: Vec<Value> = Vec::new();
    let mut record = |stage: &str,
                      routed: &mut engine::RoutedClassMemory,
                      exhaustive: &engine::PackedClassMemory| {
        let cluster_sizes: Vec<usize> = (0..routed.num_clusters())
            .map(|c| routed.cluster(c).len())
            .collect();
        let dump = |r: &engine::RoutedClassMemory| {
            scored(
                &r.top_k(&probe, 3)
                    .into_iter()
                    .map(|(label, sim)| (label.to_string(), sim))
                    .collect::<Vec<_>>(),
            )
        };
        let partial_top = dump(routed);
        let candidates = routed.candidate_classes(&probe);
        routed.probe_all();
        let full_top = dump(routed);
        // The bit-identity contract, asserted before it is pinned: full
        // probing must agree exactly with the monolithic scan.
        let reference = scored(
            &engine::Scorer::top_k(exhaustive, &probe, 3)
                .into_iter()
                .map(|(label, sim)| (label.to_string(), sim))
                .collect::<Vec<_>>(),
        );
        assert_eq!(full_top, reference, "full probing diverged at `{stage}`");
        routed.set_nprobe(2);
        stages.push(object(vec![
            ("stage", stage.to_value()),
            ("classes", routed.len().to_value()),
            ("cluster_sizes", cluster_sizes.to_value()),
            ("candidates_at_nprobe_2", candidates.to_value()),
            ("top_3_partial", partial_top),
            ("top_3_full", full_top),
        ]));
    };
    let rows: Vec<Vec<i8>> = (0..10).map(|_| next_signs()).collect();
    for (c, row) in rows.iter().take(7).enumerate() {
        routed.add_class(format!("class{c:02}"), row);
        exhaustive.insert_signs(format!("class{c:02}"), row);
    }
    record("seed_7_classes", &mut routed, &exhaustive);
    routed.update_class("class02", &rows[7]);
    exhaustive.insert_signs("class02", &rows[7]);
    routed.update_class("class05", &rows[8]);
    exhaustive.insert_signs("class05", &rows[8]);
    record("update_2_classes", &mut routed, &exhaustive);
    routed.remove_class("class01");
    exhaustive.remove("class01");
    routed.remove_class("class04");
    exhaustive.remove("class04");
    record("remove_2_classes", &mut routed, &exhaustive);
    routed.add_class("class07", &rows[9]);
    exhaustive.insert_signs("class07", &rows[9]);
    routed.add_class("class02", &rows[0]); // upsert an existing label
    exhaustive.insert_signs("class02", &rows[0]);
    record("add_after_remove", &mut routed, &exhaustive);
    routed.recluster();
    record("explicit_recluster", &mut routed, &exhaustive);
    check_golden(
        "routed_memory_ops",
        &object(vec![
            ("scenario", "routed_memory_ops".to_value()),
            ("dim", dim.to_value()),
            ("clusters", 3usize.to_value()),
            ("nprobe", 2usize.to_value()),
            ("stages", Value::Array(stages)),
        ]),
    );
}

// ---------------------------------------------------------------------------
// Serve-time hot-swap scenario
// ---------------------------------------------------------------------------

/// The full online lifecycle: train → serve a subset of the evaluation
/// classes → register the held-out classes through the live server →
/// re-query → update → remove. Every response is recorded with the snapshot
/// version that served it; queries are issued sequentially so the version
/// trace is deterministic.
#[test]
fn scenario_serve_hot_swap() {
    let mut config = DatasetConfig::tiny(37);
    config.num_classes = 24;
    config.images_per_class = 6;
    config.feature_dim = 48;
    let data = CubLikeDataset::generate(&config);
    let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(2));
    let (_, model) = pipeline.run_returning_model(&data, SplitKind::Zs, 2);

    let split = data.split(SplitKind::Zs);
    let eval_classes = split.eval_classes();
    let class_attr = data.class_attribute_matrix(eval_classes);
    let labels: Vec<String> = eval_classes
        .iter()
        .map(|c| format!("class{c:03}"))
        .collect();
    // Hold the last two evaluation classes out of the initial serving set.
    let initial = labels.len() - 2;
    let server = QueryServer::start(
        model,
        labels[..initial].to_vec(),
        &class_attr.select_rows(&(0..initial).collect::<Vec<_>>()),
        ServerConfig {
            max_batch: 8,
            max_wait_us: 50,
            threads: 2,
            top_k: 3,
            shards: 3,
            routed: None,
            publish_every: 1,
        },
    )
    .expect("server starts");

    let (eval_x, _) = data.features_and_labels(eval_classes);
    let queries: Vec<Vec<f32>> = (0..5).map(|q| eval_x.row(q * 3).to_vec()).collect();
    let run_queries = |server: &QueryServer| -> Value {
        Value::Array(
            queries
                .iter()
                .map(|q| {
                    let (version, top) = server.query_traced(q).expect("query served");
                    object(vec![("version", version.to_value()), ("top", scored(&top))])
                })
                .collect(),
        )
    };

    let before = run_queries(&server);

    // Register the held-out classes through the live server.
    let mut registrations: Vec<Value> = Vec::new();
    for (r, label) in labels.iter().enumerate().skip(initial) {
        let snapshot = server
            .register_class(label.clone(), class_attr.row(r))
            .expect("class registers");
        registrations.push(object(vec![
            ("label", label.to_value()),
            ("version", snapshot.version().to_value()),
            ("classes_live", snapshot.memory().len().to_value()),
        ]));
    }
    let after_register = run_queries(&server);

    // Re-point one registered class at different attributes, then drop one
    // of the original classes.
    let updated = server
        .update_class(&labels[initial], class_attr.row(0))
        .expect("class updates");
    let removed = server.remove_class(&labels[0]).expect("class removes");
    let after_mutations = run_queries(&server);

    let stats = server.stats();
    check_golden(
        "serve_hot_swap",
        &object(vec![
            ("scenario", "serve_hot_swap".to_value()),
            ("dataset_seed", 37u64.to_value()),
            ("pipeline_seed", 2u64.to_value()),
            ("initial_classes", initial.to_value()),
            ("queries_before_register", before),
            ("registrations", Value::Array(registrations)),
            ("queries_after_register", after_register),
            ("update_version", updated.version().to_value()),
            ("remove_version", removed.version().to_value()),
            ("queries_after_mutations", after_mutations),
            // Only deterministic counters belong in a golden: batch counts
            // depend on coalescing timing, swap counts do not.
            ("swaps", stats.swaps.to_value()),
            ("queries_served", stats.queries.to_value()),
        ]),
    );
}

// ---------------------------------------------------------------------------
// Crash-recovery scenario
// ---------------------------------------------------------------------------

/// The durability lifecycle as a golden: a durable server registers,
/// updates, and removes classes; the process "dies" (the WAL directory is
/// all that survives, including a torn partial record appended to simulate
/// a crash mid-append); recovery rebuilds the server and re-runs the same
/// queries. The golden pins the pre-crash traces, the recovery report, and
/// the post-recovery traces — which must carry the same snapshot version
/// and the same similarity bits, or the crash-safety contract broke.
#[test]
fn scenario_serve_crash_recovery() {
    let mut config = DatasetConfig::tiny(41);
    config.num_classes = 20;
    config.images_per_class = 6;
    config.feature_dim = 48;
    let data = CubLikeDataset::generate(&config);
    let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(2));
    let (_, model) = pipeline.run_returning_model(&data, SplitKind::Zs, 3);
    let schema = data.schema();

    let split = data.split(SplitKind::Zs);
    let eval_classes = split.eval_classes();
    let class_attr = data.class_attribute_matrix(eval_classes);
    let labels: Vec<String> = eval_classes
        .iter()
        .map(|c| format!("class{c:03}"))
        .collect();
    let initial = labels.len() - 2;
    let server_config = ServerConfig {
        max_batch: 8,
        max_wait_us: 50,
        threads: 2,
        top_k: 3,
        shards: 3,
        routed: None,
        publish_every: 1,
    };
    // The WAL directory is scratch state, not part of the golden.
    let wal_dir = std::env::temp_dir().join(format!("zsc-scenario-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&wal_dir).ok();
    let server = QueryServer::start_durable(
        model,
        labels[..initial].to_vec(),
        &class_attr.select_rows(&(0..initial).collect::<Vec<_>>()),
        schema,
        server_config,
        DurabilityConfig {
            dir: wal_dir.clone(),
            sync: SyncPolicy::Always,
            // Compaction off keeps the replayed-record count (and with it
            // this golden) a pure function of the mutation script.
            compact_every: 0,
        },
    )
    .expect("durable server starts");

    let (eval_x, _) = data.features_and_labels(eval_classes);
    let queries: Vec<Vec<f32>> = (0..5).map(|q| eval_x.row(q * 3).to_vec()).collect();
    let run_queries = |server: &QueryServer| -> Value {
        Value::Array(
            queries
                .iter()
                .map(|q| {
                    let (version, top) = server.query_traced(q).expect("query served");
                    object(vec![("version", version.to_value()), ("top", scored(&top))])
                })
                .collect(),
        )
    };

    // The mutation script: register the held-out classes, re-point one,
    // drop one of the originals. Four WAL records.
    for (r, label) in labels.iter().enumerate().skip(initial) {
        server
            .register_class(label.clone(), class_attr.row(r))
            .expect("class registers");
    }
    server
        .update_class(&labels[initial], class_attr.row(0))
        .expect("class updates");
    server.remove_class(&labels[0]).expect("class removes");
    let before_crash = run_queries(&server);
    drop(server); // the crash: only the WAL directory survives

    // A torn partial record after the last acknowledged one — the signature
    // of dying mid-append. Recovery must flag and ignore it.
    {
        use std::io::Write;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(wal::wal_path(&wal_dir))
            .expect("open log");
        log.write_all(&[0x13, 0x37, 0xAB])
            .expect("append torn bytes");
    }

    let (recovered, report) = QueryServer::recover(
        schema,
        server_config,
        DurabilityConfig {
            dir: wal_dir.clone(),
            sync: SyncPolicy::Always,
            compact_every: 0,
        },
    )
    .expect("recovers");
    let after_recovery = run_queries(&recovered);
    drop(recovered);
    std::fs::remove_dir_all(&wal_dir).ok();

    check_golden(
        "serve_crash_recovery",
        &object(vec![
            ("scenario", "serve_crash_recovery".to_value()),
            ("dataset_seed", 41u64.to_value()),
            ("pipeline_seed", 3u64.to_value()),
            ("initial_classes", initial.to_value()),
            ("queries_before_crash", before_crash),
            (
                "recovery",
                object(vec![
                    ("snapshot_version", report.snapshot_version.to_value()),
                    ("replayed_records", report.replayed_records.to_value()),
                    ("torn_tail", report.torn_tail.to_value()),
                ]),
            ),
            ("queries_after_recovery", after_recovery),
        ]),
    );
}

// ---------------------------------------------------------------------------
// Generalized zero-shot evaluation scenario
// ---------------------------------------------------------------------------

/// GZSL on the attribute-level synthetic workload, as a golden: the HDC
/// model's seen/unseen/H report ([`evaluate_gzsl`]), the rejection
/// threshold a [`SimilarityCalibrator`] fits on the known-query logits
/// (pinned as raw `f32` bits) with the open-set metrics it induces, and
/// the H-metric comparison against the ESZSL, DAP, and random-prior
/// baselines on the same workload. The drill model runs without the FC
/// projection, so query feature rows are the attribute-encoder embeddings
/// of the workload's query attribute vectors — both sides of every cosine
/// live in one hypervector space and the whole document is a pure
/// function of the seeds.
#[test]
fn scenario_gzsl_eval() {
    let schema = AttributeSchema::cub200();
    let workload = GzslWorkload::generate(&GzslWorkloadConfig {
        classes: 10,
        unseen: 3,
        attribute_dim: schema.num_attributes(),
        queries: 60,
        distractors: 12,
        noise: 0.35,
        seed: 0x675a_0001,
    });
    let model = ZscModel::new(
        &ModelConfig::tiny().with_projection(false).with_seed(7),
        &schema,
        48,
    );
    let class_attr = Matrix::from_rows(&workload.class_attributes);
    let query_attr = Matrix::from_rows(&workload.query_attributes);
    let query_embeddings = model.attribute_encoder().infer_classes(&query_attr);
    let known_indices: Vec<usize> = (0..workload.query_class.len())
        .filter(|&q| workload.query_class[q].is_some())
        .collect();
    let known_targets: Vec<usize> = known_indices
        .iter()
        .map(|&q| workload.query_class[q].expect("known query"))
        .collect();

    // The HDC model under the generalized protocol.
    let gzsl = evaluate_gzsl(
        &model,
        &query_embeddings.select_rows(&known_indices),
        &known_targets,
        &class_attr,
        &workload.unseen,
    );

    // Open-set calibration on the known-query top-1 logits, then the
    // rejection metrics the fitted threshold induces over the full mixed
    // batch (knowns + distractors).
    let logits = model.class_logits(&query_embeddings, &class_attr);
    let top1: Vec<f32> = (0..logits.rows())
        .map(|q| {
            logits
                .row(q)
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .collect();
    let known_flags: Vec<bool> = workload.query_class.iter().map(Option::is_some).collect();
    let known_top1: Vec<f32> = known_indices.iter().map(|&q| top1[q]).collect();
    let calibration = SimilarityCalibrator::new(0.1).fit(&known_top1);
    let rejection = metrics::rejection_report(&top1, &known_flags, calibration.threshold);
    let auroc = metrics::auroc(&top1, &known_flags).expect("both partitions are populated");

    // The same workload through the baselines: trained on the raw
    // attribute rows of the *seen*-class queries (the unseen classes are
    // the last indices, so seen targets already index the seen signature
    // block), scored over the union class set.
    let seen_count = workload.seen_classes().len();
    let train_indices: Vec<usize> = known_indices
        .iter()
        .copied()
        .filter(|&q| workload.query_class[q].expect("known query") < seen_count)
        .collect();
    let train_x = query_attr.select_rows(&train_indices);
    let train_targets: Vec<usize> = train_indices
        .iter()
        .map(|&q| workload.query_class[q].expect("known query"))
        .collect();
    let seen_signatures = class_attr.select_rows(&(0..seen_count).collect::<Vec<_>>());
    let eval_x = query_attr.select_rows(&known_indices);

    let eszsl = Eszsl::fit(
        &train_x,
        &train_targets,
        &seen_signatures,
        &EszslConfig::default(),
    );
    let eszsl_outcome = GzslOutcome::from_scores(
        &eszsl.scores(&eval_x, &class_attr),
        &known_targets,
        &workload.unseen,
    );
    let attribute_targets = Matrix::from_rows(
        &train_targets
            .iter()
            .map(|&c| workload.class_attributes[c].clone())
            .collect::<Vec<_>>(),
    );
    let dap = DirectAttributePrediction::fit(&train_x, &attribute_targets, 0.1);
    let dap_outcome = GzslOutcome::from_scores(
        &dap.class_scores(&eval_x, &class_attr),
        &known_targets,
        &workload.unseen,
    );
    let random_outcome = GzslOutcome::from_predictions(
        &RandomBaseline::new(workload.labels.len(), 11).predict(known_targets.len()),
        &known_targets,
        &workload.unseen,
    );
    let outcome = |o: &GzslOutcome| {
        object(vec![
            ("seen", o.seen.to_value()),
            ("unseen", o.unseen.to_value()),
            ("harmonic", o.harmonic.to_value()),
        ])
    };

    check_golden(
        "gzsl_eval",
        &object(vec![
            ("scenario", "gzsl_eval".to_value()),
            ("workload_seed", 0x675a_0001u64.to_value()),
            ("model_seed", 7u64.to_value()),
            ("classes", workload.labels.len().to_value()),
            ("unseen_classes", workload.unseen_classes().to_value()),
            ("gzsl", gzsl.to_value()),
            (
                "calibration",
                object(vec![
                    (
                        "target_false_reject",
                        calibration.target_false_reject.to_value(),
                    ),
                    ("threshold", calibration.threshold.to_value()),
                    ("threshold_bits", calibration.threshold.to_bits().to_value()),
                ]),
            ),
            (
                "open_set",
                object(vec![
                    ("rejected", rejection.rejected.to_value()),
                    (
                        "precision",
                        rejection.precision.map_or(Value::Null, |p| p.to_value()),
                    ),
                    (
                        "recall",
                        rejection.recall.map_or(Value::Null, |r| r.to_value()),
                    ),
                    (
                        "false_reject_rate",
                        rejection
                            .false_reject_rate
                            .map_or(Value::Null, |f| f.to_value()),
                    ),
                    ("auroc", auroc.to_value()),
                ]),
            ),
            (
                "baselines",
                object(vec![
                    ("eszsl", outcome(&eszsl_outcome)),
                    ("dap", outcome(&dap_outcome)),
                    ("random_prior", outcome(&random_outcome)),
                ]),
            ),
        ]),
    );
}

// ---------------------------------------------------------------------------
// Open-set serving scenario
// ---------------------------------------------------------------------------

/// Serve-time open-set rejection as a golden, on a **routed durable**
/// server: register classes, calibrate a threshold on served similarities
/// and install it live (`set_threshold`, one WAL record + one snapshot
/// swap), trace the verdicts, then crash with a torn WAL tail and
/// recover. The golden pins the verdict traces before and after
/// calibration, the fitted threshold bits, the recovery report, and the
/// post-recovery traces — which must reproduce the pre-crash threshold
/// and verdicts bit-for-bit. Full-probe routed answers are asserted
/// bit-identical to the exhaustive sharded scan before anything is
/// pinned.
#[test]
fn scenario_open_set_serve() {
    let mut config = DatasetConfig::tiny(43);
    config.num_classes = 20;
    config.images_per_class = 6;
    config.feature_dim = 48;
    let data = CubLikeDataset::generate(&config);
    let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(2));
    let (_, model) = pipeline.run_returning_model(&data, SplitKind::Zs, 4);
    let schema = data.schema();

    let split = data.split(SplitKind::Zs);
    let eval_classes = split.eval_classes();
    let class_attr = data.class_attribute_matrix(eval_classes);
    let labels: Vec<String> = eval_classes
        .iter()
        .map(|c| format!("class{c:03}"))
        .collect();
    let initial = labels.len() - 2;
    let server_config = ServerConfig {
        max_batch: 8,
        max_wait_us: 50,
        threads: 2,
        top_k: 3,
        shards: 3,
        routed: Some(engine::RoutedConfig {
            clusters: 3,
            nprobe: 2,
            ..engine::RoutedConfig::default()
        }),
        publish_every: 1,
    };
    let wal_dir =
        std::env::temp_dir().join(format!("zsc-scenario-open-set-{}", std::process::id()));
    std::fs::remove_dir_all(&wal_dir).ok();
    let server = QueryServer::start_durable(
        model,
        labels[..initial].to_vec(),
        &class_attr.select_rows(&(0..initial).collect::<Vec<_>>()),
        schema,
        server_config,
        DurabilityConfig {
            dir: wal_dir.clone(),
            sync: SyncPolicy::Always,
            compact_every: 0,
        },
    )
    .expect("durable server starts");

    let (eval_x, _) = data.features_and_labels(eval_classes);
    let queries: Vec<Vec<f32>> = (0..5).map(|q| eval_x.row(q * 3).to_vec()).collect();
    let run_queries = |server: &QueryServer| -> Value {
        Value::Array(
            queries
                .iter()
                .map(|q| {
                    let (version, top, verdict) =
                        server.query_with_verdict(q).expect("query served");
                    object(vec![
                        ("version", version.to_value()),
                        (
                            "verdict",
                            verdict.map_or(Value::Null, |v| v.to_string().to_value()),
                        ),
                        ("top", scored(&top)),
                    ])
                })
                .collect(),
        )
    };

    // Register the held-out classes (two WAL records), then trace the
    // uncalibrated verdicts: all null.
    for (r, label) in labels.iter().enumerate().skip(initial) {
        server
            .register_class(label.clone(), class_attr.row(r))
            .expect("class registers");
    }
    let before_calibration = run_queries(&server);

    // Calibrate on the served top-1 similarities at a 25% target
    // false-reject rate — deliberately coarse so the trace shows both
    // verdicts — and install the threshold live (one more WAL record).
    let sims: Vec<f32> = queries
        .iter()
        .map(|q| server.query(q).expect("query served")[0].1)
        .collect();
    let calibration = SimilarityCalibrator::new(0.25).fit(&sims);
    let calibrated = server
        .set_threshold(calibration.threshold)
        .expect("threshold installs");
    let after_calibration = run_queries(&server);

    // The routed bit-identity contract, asserted before it is pinned:
    // full probing must agree exactly with the exhaustive sharded scan.
    let snapshot = server.snapshot();
    for (q, features) in queries.iter().enumerate() {
        let embedding = snapshot
            .model()
            .embed_images(&Matrix::from_rows(std::slice::from_ref(features)));
        let packed = engine::pack_float_signs(embedding.row(0));
        let mut full = snapshot.routed().expect("routed server").clone();
        full.probe_all();
        let routed_bits: Vec<(String, u32)> = full
            .top_k(&packed, 3)
            .into_iter()
            .map(|(label, sim)| (label.to_string(), sim.to_bits()))
            .collect();
        let exhaustive_bits: Vec<(String, u32)> = snapshot
            .memory()
            .top_k(&packed, 3)
            .into_iter()
            .map(|(label, sim)| (label.to_string(), sim.to_bits()))
            .collect();
        assert_eq!(
            routed_bits, exhaustive_bits,
            "query {q}: full-probe routed answers diverged from the exhaustive scan"
        );
    }
    drop(server); // the crash: only the WAL directory survives

    // A torn partial record after the last acknowledged one; recovery
    // must flag and ignore it — and still carry the threshold.
    {
        use std::io::Write;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(wal::wal_path(&wal_dir))
            .expect("open log");
        log.write_all(&[0x13, 0x37, 0xAB])
            .expect("append torn bytes");
    }
    let (recovered, report) = QueryServer::recover(
        schema,
        server_config,
        DurabilityConfig {
            dir: wal_dir.clone(),
            sync: SyncPolicy::Always,
            compact_every: 0,
        },
    )
    .expect("recovers");
    let recovered_threshold = recovered
        .snapshot()
        .threshold()
        .expect("threshold survives recovery");
    assert_eq!(
        recovered_threshold.to_bits(),
        calibration.threshold.to_bits(),
        "recovery must restore the calibrated threshold bit-exactly"
    );
    let after_recovery = run_queries(&recovered);
    drop(recovered);
    std::fs::remove_dir_all(&wal_dir).ok();

    check_golden(
        "open_set_serve",
        &object(vec![
            ("scenario", "open_set_serve".to_value()),
            ("dataset_seed", 43u64.to_value()),
            ("pipeline_seed", 4u64.to_value()),
            ("initial_classes", initial.to_value()),
            ("queries_before_calibration", before_calibration),
            (
                "calibration",
                object(vec![
                    (
                        "target_false_reject",
                        calibration.target_false_reject.to_value(),
                    ),
                    ("threshold", calibration.threshold.to_value()),
                    ("threshold_bits", calibration.threshold.to_bits().to_value()),
                    ("set_version", calibrated.version().to_value()),
                ]),
            ),
            ("queries_after_calibration", after_calibration),
            (
                "recovery",
                object(vec![
                    ("snapshot_version", report.snapshot_version.to_value()),
                    ("replayed_records", report.replayed_records.to_value()),
                    ("torn_tail", report.torn_tail.to_value()),
                    ("threshold_bits", recovered_threshold.to_bits().to_value()),
                ]),
            ),
            ("queries_after_recovery", after_recovery),
        ]),
    );
}

// ---------------------------------------------------------------------------
// Streaming continual-learning scenario
// ---------------------------------------------------------------------------

/// The streaming continual-learning lifecycle as a golden: a durable server
/// registers two held-out classes, folds a concept-drifting labeled example
/// stream into exact per-class counters (`observe`) with batched publication
/// (`publish_every: 4`), flushes mid-stream, then dies mid-batch with a torn
/// WAL tail; recovery replays the observation log and the stream resumes to
/// its end. The golden pins the publication-boundary versions, the stream
/// and drift counters at every stage, the recovery report, and the served
/// traces after the final flush — and before anything is pinned, the
/// recovered server's memory is asserted bit-identical to an uninterrupted
/// non-durable twin that consumed the same stream, which is the exactness
/// contract of the counter representation.
#[test]
fn scenario_stream_learn() {
    let mut config = DatasetConfig::tiny(47);
    config.num_classes = 20;
    config.images_per_class = 6;
    config.feature_dim = 48;
    let data = CubLikeDataset::generate(&config);
    let pipeline = Pipeline::new(ModelConfig::tiny(), TrainConfig::fast().with_epochs(2));
    let (_, model) = pipeline.run_returning_model(&data, SplitKind::Zs, 5);
    let schema = data.schema();

    let split = data.split(SplitKind::Zs);
    let eval_classes = split.eval_classes();
    let class_attr = data.class_attribute_matrix(eval_classes);
    let labels: Vec<String> = eval_classes
        .iter()
        .map(|c| format!("class{c:03}"))
        .collect();
    let initial = labels.len() - 2;
    let server_config = ServerConfig {
        max_batch: 8,
        max_wait_us: 50,
        threads: 2,
        top_k: 3,
        shards: 3,
        routed: None,
        // Batched publication: every 4th observation re-signs the pending
        // classes into one snapshot swap.
        publish_every: 4,
    };
    let wal_dir = std::env::temp_dir().join(format!("zsc-scenario-stream-{}", std::process::id()));
    std::fs::remove_dir_all(&wal_dir).ok();
    let durability = || DurabilityConfig {
        dir: wal_dir.clone(),
        sync: SyncPolicy::Always,
        // Compaction off keeps the replayed-record count (and with it this
        // golden) a pure function of the observation script.
        compact_every: 0,
    };
    let frozen = model.freeze();
    let server = QueryServer::start_durable(
        frozen.clone(),
        labels[..initial].to_vec(),
        &class_attr.select_rows(&(0..initial).collect::<Vec<_>>()),
        schema,
        server_config,
        durability(),
    )
    .expect("durable server starts");

    // Register the held-out classes (two WAL records), then stream into
    // them plus one original class: the continual-learning verbs run
    // against both freshly registered and long-standing prototypes.
    for (r, label) in labels.iter().enumerate().skip(initial) {
        server
            .register_class(label.clone(), class_attr.row(r))
            .expect("class registers");
    }
    let streamed: [&String; 3] = [&labels[initial], &labels[initial + 1], &labels[0]];

    // The concept-drift stream; pure in its config, so the durable run and
    // the uninterrupted twin consume bit-identical examples.
    let workload = StreamWorkload::generate(&StreamWorkloadConfig {
        classes: streamed.len(),
        feature_dim: 48,
        steps: 9,
        examples_per_step: 3,
        drift: 0.25,
        noise: 0.05,
        seed: 4747,
    });
    assert_eq!(workload.examples.len(), 27);
    let observe = |server: &QueryServer, index: usize| -> Option<u64> {
        let example = &workload.examples[index];
        server
            .observe(streamed[example.class], &example.features)
            .expect("observe accepted")
            .map(|snapshot| snapshot.version())
    };
    let stream_stats_value = |server: &QueryServer| -> Value {
        let stats = server.stream_stats();
        object(vec![
            ("observes", stats.observes.to_value()),
            ("pending_classes", stats.pending_classes.to_value()),
            ("since_publish", stats.since_publish.to_value()),
            ("publishes", stats.publishes.to_value()),
            ("drift_alarms", stats.drift_alarms.to_value()),
        ])
    };

    // Part A: 14 observations (boundaries at 4, 8, 12) and an explicit
    // flush publishing the 2 left pending.
    let boundary_versions: Vec<Value> = (0..14)
        .filter_map(|i| observe(&server, i))
        .map(|v| v.to_value())
        .collect();
    let flushed = server.flush().expect("flush publishes").version();

    // Part B: 5 more observations (boundary at the 4th), leaving one
    // observation pending — the server dies mid-batch.
    let mut part_b_boundaries = 0u64;
    for i in 14..19 {
        if observe(&server, i).is_some() {
            part_b_boundaries += 1;
        }
    }
    assert_eq!(part_b_boundaries, 1, "observes 14..18 land one boundary");
    let stats_before_crash = stream_stats_value(&server);
    let version_at_crash = server.snapshot().version();
    drop(server); // the crash: only the WAL directory survives

    // A torn partial record after the last acknowledged one — dying
    // mid-append. Recovery must flag and ignore it.
    {
        use std::io::Write;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(wal::wal_path(&wal_dir))
            .expect("open log");
        log.write_all(&[0x13, 0x37, 0xAB])
            .expect("append torn bytes");
    }
    let (recovered, report) =
        QueryServer::recover(schema, server_config, durability()).expect("recovers");
    assert!(report.torn_tail, "the torn tail must be detected");
    assert_eq!(
        recovered.snapshot().version(),
        version_at_crash,
        "recovery must land on the pre-crash version"
    );
    let stats_after_recovery = stream_stats_value(&recovered);

    // Part C: the stream resumes where it left off — the recovered batching
    // state machine places the next boundaries exactly where an
    // uninterrupted run would — and a final flush publishes the tail.
    for i in 19..27 {
        observe(&recovered, i);
    }
    let final_version = recovered.flush().expect("final flush").version();

    // The uninterrupted twin: same model, same registration script, same
    // stream, same flush positions, no crash. Exact online updates mean the
    // recovered server's memory is bit-identical to it.
    let twin = QueryServer::start(
        frozen,
        labels[..initial].to_vec(),
        &class_attr.select_rows(&(0..initial).collect::<Vec<_>>()),
        server_config,
    )
    .expect("twin starts");
    for (r, label) in labels.iter().enumerate().skip(initial) {
        twin.register_class(label.clone(), class_attr.row(r))
            .expect("twin registers");
    }
    for i in 0..14 {
        observe(&twin, i);
    }
    twin.flush().expect("twin mid-stream flush");
    for i in 14..27 {
        observe(&twin, i);
    }
    let twin_final = twin.flush().expect("twin final flush");
    let recovered_final = recovered.snapshot();
    assert_eq!(
        twin_final.version(),
        final_version,
        "the twin must publish the same version chronology"
    );
    assert!(
        recovered_final.memory() == twin_final.memory(),
        "recovered stream must be bit-identical to the uninterrupted twin"
    );
    drop(twin);

    // Served traces after the final flush: the model's own eval rows plus
    // the last step's drifted stream rows.
    let (eval_x, _) = data.features_and_labels(eval_classes);
    let mut queries: Vec<Vec<f32>> = (0..4).map(|q| eval_x.row(q * 3).to_vec()).collect();
    queries.extend(workload.examples[24..27].iter().map(|e| e.features.clone()));
    let final_queries = Value::Array(
        queries
            .iter()
            .map(|q| {
                let (version, top) = recovered.query_traced(q).expect("query served");
                object(vec![("version", version.to_value()), ("top", scored(&top))])
            })
            .collect(),
    );
    let final_stats = stream_stats_value(&recovered);
    let drift = recovered.drift_report();
    let drift_classes = Value::Array(
        drift
            .classes
            .iter()
            .map(|class| {
                object(vec![
                    ("label", class.label.to_value()),
                    ("publishes", class.publishes.to_value()),
                    ("last_displacement", class.last_displacement.to_value()),
                    ("mean_displacement", class.mean_displacement.to_value()),
                    ("alarms", class.alarms.to_value()),
                    ("drifted", class.drifted.to_value()),
                ])
            })
            .collect(),
    );
    drop(recovered);
    std::fs::remove_dir_all(&wal_dir).ok();

    check_golden(
        "stream_learn",
        &object(vec![
            ("scenario", "stream_learn".to_value()),
            ("dataset_seed", 47u64.to_value()),
            ("pipeline_seed", 5u64.to_value()),
            ("initial_classes", initial.to_value()),
            (
                "streamed_labels",
                Value::Array(streamed.iter().map(|l| l.to_value()).collect()),
            ),
            ("publish_every", 4u64.to_value()),
            (
                "stream",
                object(vec![
                    ("examples", 27u64.to_value()),
                    ("boundary_versions", Value::Array(boundary_versions)),
                    ("flush_version", flushed.to_value()),
                    ("version_at_crash", version_at_crash.to_value()),
                    ("stats_before_crash", stats_before_crash),
                ]),
            ),
            (
                "recovery",
                object(vec![
                    ("snapshot_version", report.snapshot_version.to_value()),
                    ("replayed_records", report.replayed_records.to_value()),
                    ("torn_tail", report.torn_tail.to_value()),
                    ("stats_after_recovery", stats_after_recovery),
                ]),
            ),
            (
                "resumed",
                object(vec![
                    ("final_version", final_version.to_value()),
                    ("twin_bit_identical", true.to_value()),
                    ("stats", final_stats),
                ]),
            ),
            (
                "drift",
                object(vec![
                    ("publishes", drift.publishes.to_value()),
                    ("alarms", drift.alarms.to_value()),
                    ("classes", drift_classes),
                ]),
            ),
            ("queries_after_final_flush", final_queries),
        ]),
    );
}
