//! Cross-crate integration tests: the full zero-shot pipeline, the baselines
//! and the metrics working together on the synthetic CUB-200 substrate.

use baselines::eszsl::{Eszsl, EszslConfig};
use baselines::{DirectAttributePrediction, RandomBaseline};
use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
use hdc_zsc::{
    evaluate_zsc, AttributeEncoderKind, ModelConfig, ParameterBreakdown, Pipeline, TrainConfig,
    ZscModel,
};

/// A moderately sized dataset shared by the integration tests (bigger than
/// the unit-test fixture so zero-shot transfer is reliably visible, small
/// enough to keep the test suite fast).
fn integration_dataset(seed: u64) -> CubLikeDataset {
    let mut config = DatasetConfig::tiny(seed);
    config.num_classes = 32;
    config.images_per_class = 10;
    config.feature_dim = 192;
    CubLikeDataset::generate(&config)
}

#[test]
fn full_pipeline_performs_zero_shot_classification() {
    let data = integration_dataset(1);
    let split = data.split(SplitKind::Zs);
    let outcome = Pipeline::new(
        ModelConfig::paper_default().with_embedding_dim(192),
        TrainConfig::paper_default(),
    )
    .run(&data, SplitKind::Zs, 0);
    let chance = 1.0 / split.eval_classes().len() as f32;
    assert!(
        outcome.zsc.top1 > 2.0 * chance,
        "zero-shot top-1 {:.3} should clearly beat chance {:.3}",
        outcome.zsc.top1,
        chance
    );
    assert!(outcome.zsc.top5 >= outcome.zsc.top1);
    assert!(outcome.phase2_history.improved());
    assert!(outcome.phase3_history.improved());
}

#[test]
fn hdc_and_mlp_attribute_encoders_are_comparable() {
    let data = integration_dataset(2);
    let train_cfg = TrainConfig::paper_default();
    let run = |kind: AttributeEncoderKind| {
        Pipeline::new(
            ModelConfig::paper_default()
                .with_embedding_dim(192)
                .with_attribute_encoder(kind),
            train_cfg,
        )
        .run(&data, SplitKind::Zs, 0)
    };
    let hdc = run(AttributeEncoderKind::Hdc);
    let mlp = run(AttributeEncoderKind::TrainableMlp);
    // The paper's central claim: the stationary HDC encoder is competitive
    // with the trainable MLP while adding zero trainable parameters.
    assert_eq!(hdc.params.attribute_encoder, 0);
    assert!(mlp.params.attribute_encoder > 0);
    assert!(
        hdc.zsc.top1 > mlp.zsc.top1 - 0.25,
        "HDC ({:.2}) should be within 25 points of the MLP ({:.2}) on this small fixture",
        hdc.zsc.top1,
        mlp.zsc.top1
    );
}

#[test]
fn trained_model_beats_untrained_and_random_baselines() {
    let data = integration_dataset(3);
    let split = data.split(SplitKind::Zs);
    let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
    let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
    let eval_attr = data.class_attribute_matrix(split.eval_classes());

    // Untrained model (random FC projection).
    let untrained = ZscModel::new(
        &ModelConfig::paper_default().with_embedding_dim(192),
        data.schema(),
        data.config().feature_dim,
    );
    let untrained_report = evaluate_zsc(&untrained, &eval_x, &eval_local, &eval_attr);

    // Trained model.
    let outcome = Pipeline::new(
        ModelConfig::paper_default().with_embedding_dim(192),
        TrainConfig::paper_default(),
    )
    .run(&data, SplitKind::Zs, 0);

    // Random baseline.
    let random = RandomBaseline::new(split.eval_classes().len(), 0).accuracy(&eval_local);

    assert!(
        outcome.zsc.top1 > untrained_report.top1,
        "trained {:.3} vs untrained {:.3}",
        outcome.zsc.top1,
        untrained_report.top1
    );
    assert!(
        outcome.zsc.top1 > random + 0.05,
        "trained {:.3} vs random {:.3}",
        outcome.zsc.top1,
        random
    );
}

#[test]
fn eszsl_and_dap_run_on_the_same_substrate() {
    let data = integration_dataset(4);
    let split = data.split(SplitKind::Zs);
    let (train_x, train_labels) = data.features_and_labels(split.train_classes());
    let train_local = CubLikeDataset::to_local_labels(&train_labels, split.train_classes());
    let (_, train_attr) = data.features_and_attributes(split.train_classes());
    let train_sigs = data.class_attribute_matrix(split.train_classes());
    let (eval_x, eval_labels) = data.features_and_labels(split.eval_classes());
    let eval_local = CubLikeDataset::to_local_labels(&eval_labels, split.eval_classes());
    let eval_sigs = data.class_attribute_matrix(split.eval_classes());
    let chance = 1.0 / split.eval_classes().len() as f32;

    let eszsl = Eszsl::fit(&train_x, &train_local, &train_sigs, &EszslConfig::default());
    let eszsl_acc = eszsl.accuracy(&eval_x, &eval_local, &eval_sigs);
    assert!(eszsl_acc > 2.0 * chance, "ESZSL accuracy {eszsl_acc}");

    let dap = DirectAttributePrediction::fit(&train_x, &train_attr, 1.0);
    let dap_acc = dap.accuracy(&eval_x, &eval_local, &eval_sigs);
    assert!(dap_acc > 2.0 * chance, "DAP accuracy {dap_acc}");
}

#[test]
fn parameter_accounting_matches_paper_at_full_dimensions() {
    // Build the paper-scale model (2048-d features, 1536-d embedding) without
    // training it, and check the 26.6M figure and the stationary-encoder
    // claim hold in the assembled system.
    let schema = dataset::AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::paper_default(), &schema, 2048);
    let breakdown = ParameterBreakdown::of(&model);
    assert!((breakdown.total_millions() - 26.6).abs() < 0.2);
    assert_eq!(breakdown.attribute_encoder, 0);
    // The trainable part is tiny compared to the deployed model.
    assert!(breakdown.trainable() * 5 < breakdown.total());
}

#[test]
fn nozs_split_reaches_higher_accuracy_than_zero_shot() {
    // Supervised (noZS) evaluation on seen classes should be at least as easy
    // as zero-shot evaluation on unseen ones.
    let data = integration_dataset(5);
    let pipeline = Pipeline::new(
        ModelConfig::paper_default().with_embedding_dim(192),
        TrainConfig::paper_default(),
    );
    let zs = pipeline.run(&data, SplitKind::Zs, 0);
    let nozs = pipeline.run(&data, SplitKind::NoZs, 0);
    assert!(
        nozs.zsc.top1 + 0.05 >= zs.zsc.top1,
        "noZS accuracy {:.3} should not trail zero-shot accuracy {:.3}",
        nozs.zsc.top1,
        zs.zsc.top1
    );
}
