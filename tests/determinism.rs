//! Seed-determinism regression tests: the pipeline must be a pure function
//! of (dataset, config, seed). Catches accidental nondeterminism (unseeded
//! RNG use, iteration-order dependence) anywhere in the stack.

use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
use hdc_zsc::{ModelConfig, Pipeline, TrainConfig};

fn fixture() -> CubLikeDataset {
    let mut config = DatasetConfig::tiny(11);
    config.num_classes = 24;
    config.images_per_class = 8;
    config.feature_dim = 96;
    CubLikeDataset::generate(&config)
}

fn pipeline() -> Pipeline {
    Pipeline::new(
        ModelConfig::tiny().with_embedding_dim(96),
        TrainConfig::fast().with_epochs(4),
    )
}

#[test]
fn same_seed_produces_identical_outcomes() {
    let data = fixture();
    let first = pipeline().run(&data, SplitKind::Zs, 7);
    let second = pipeline().run(&data, SplitKind::Zs, 7);
    assert_eq!(
        first, second,
        "two runs with the same seed must agree bit-for-bit"
    );
}

#[test]
fn dataset_generation_is_seed_deterministic() {
    let a = fixture();
    let b = fixture();
    let classes: Vec<usize> = (0..a.config().num_classes).collect();
    assert_eq!(
        a.class_attribute_matrix(&classes),
        b.class_attribute_matrix(&classes)
    );
    let (features_a, labels_a) = a.features_and_labels(&classes);
    let (features_b, labels_b) = b.features_and_labels(&classes);
    assert_eq!(labels_a, labels_b);
    assert_eq!(features_a, features_b);
}

#[test]
fn different_seeds_produce_different_outcomes() {
    let data = fixture();
    let first = pipeline().run(&data, SplitKind::Zs, 1);
    let second = pipeline().run(&data, SplitKind::Zs, 2);
    // The final loss trajectories come from differently-initialised models;
    // bitwise-identical histories would mean the seed is being ignored.
    assert_ne!(
        first.phase2_history, second.phase2_history,
        "different seeds must produce different phase-II trajectories"
    );
}
